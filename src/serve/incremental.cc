#include "serve/incremental.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/indices.h"

namespace fairjob {
namespace {

struct EpochMetrics {
  Counter* bumps;
  Counter* columns_recomputed;
  Counter* columns_unchanged;
  LatencyHistogram* upsert_us;
};

const EpochMetrics& Metrics() {
  static const EpochMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    EpochMetrics m;
    m.bumps = registry.counter("cube.epoch.bumps");
    m.columns_recomputed = registry.counter("cube.epoch.columns_recomputed");
    m.columns_unchanged = registry.counter("cube.epoch.columns_unchanged");
    m.upsert_us = registry.histogram("cube.upsert_us");
    return m;
  }();
  return metrics;
}

// Presence plus exact bit pattern — the same identity FingerprintCube
// digests, so "unchanged" here is exactly "same fingerprint contribution"
// (0.0 vs -0.0 and NaN payloads count as changes).
bool BitwiseEqual(const std::optional<double>& a,
                  const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  uint64_t ba;
  uint64_t bb;
  std::memcpy(&ba, &*a, sizeof(ba));
  std::memcpy(&bb, &*b, sizeof(bb));
  return ba == bb;
}

// Sink for the delta rebuild: patches the cube copy in place and records,
// per column, whether any cell actually changed. Consume runs on pool
// threads, but distinct columns write disjoint cube cells and disjoint
// changed_ slots (the slot map is built up front and read-only after), so
// no synchronization is needed.
class DeltaSink final : public CubeColumnSink {
 public:
  DeltaSink(UnfairnessCube* cube, const std::vector<CubeColumnRef>& columns)
      : cube_(cube), changed_(columns.size(), 0) {
    slot_.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      slot_.emplace(Key(columns[i].query_pos, columns[i].location_pos), i);
    }
  }

  Status Consume(size_t query_pos, size_t location_pos,
                 const std::optional<double>* values,
                 size_t num_groups) override {
    if (num_groups != cube_->axis_size(Dimension::kGroup)) {
      return Status::Internal("delta column has wrong group-axis size");
    }
    auto it = slot_.find(Key(query_pos, location_pos));
    if (it == slot_.end()) {
      return Status::Internal("delta build produced an unrequested column");
    }
    bool changed = false;
    for (size_t g = 0; g < num_groups; ++g) {
      std::optional<double> old = cube_->Get(g, query_pos, location_pos);
      if (!BitwiseEqual(old, values[g])) changed = true;
      if (values[g].has_value()) {
        cube_->Set(g, query_pos, location_pos, *values[g]);
      } else {
        cube_->Clear(g, query_pos, location_pos);
      }
    }
    changed_[it->second] = changed ? 1 : 0;
    return Status::OK();
  }

  bool changed(size_t slot) const { return changed_[slot] != 0; }

 private:
  static uint64_t Key(size_t query_pos, size_t location_pos) {
    return (static_cast<uint64_t>(query_pos) << 32) |
           static_cast<uint64_t>(location_pos);
  }

  UnfairnessCube* cube_;
  std::vector<uint8_t> changed_;
  std::unordered_map<uint64_t, size_t> slot_;
};

// Deduplicates the batch's (query, location) columns, sorted for a
// deterministic recomputation order.
std::vector<CubeColumnRef> DedupColumns(std::vector<CubeColumnRef> columns) {
  std::sort(columns.begin(), columns.end(),
            [](const CubeColumnRef& a, const CubeColumnRef& b) {
              if (a.query_pos != b.query_pos) return a.query_pos < b.query_pos;
              return a.location_pos < b.location_pos;
            });
  columns.erase(std::unique(columns.begin(), columns.end(),
                            [](const CubeColumnRef& a, const CubeColumnRef& b) {
                              return a.query_pos == b.query_pos &&
                                     a.location_pos == b.location_pos;
                            }),
                columns.end());
  return columns;
}

// The shared tail of both upsert paths: recompute `touched` columns into a
// cube copy via `build_columns`, bump epochs for the bitwise-changed ones,
// patch an index copy and publish a derived snapshot — or keep the current
// one when nothing changed.
template <typename BuildColumns>
Result<UpsertReport> ApplyColumnDelta(
    std::shared_ptr<const CubeSnapshot>* snapshot, size_t rows_applied,
    const std::vector<CubeColumnRef>& touched,
    const BuildColumns& build_columns) {
  TraceSpan span("CubeMaintainer::ApplyColumnDelta", "serve");
  ScopedTimer timer(Metrics().upsert_us);

  UpsertReport report;
  report.rows_applied = rows_applied;
  report.columns_touched = touched.size();
  report.cells_recomputed =
      touched.size() * (*snapshot)->cube().axis_size(Dimension::kGroup);

  UnfairnessCube cube = (*snapshot)->cube();  // copy; the served one is immutable
  DeltaSink sink(&cube, touched);
  FAIRJOB_RETURN_IF_ERROR(build_columns(touched, &sink));

  std::vector<CubeColumnRef> changed;
  for (size_t i = 0; i < touched.size(); ++i) {
    if (sink.changed(i)) changed.push_back(touched[i]);
  }
  report.columns_changed = changed.size();
  Metrics().columns_recomputed->Add(touched.size());
  Metrics().columns_unchanged->Add(touched.size() - changed.size());

  if (changed.empty()) {
    // Bitwise no-op (e.g. a re-crawl that observed the same rankings):
    // keep serving the current snapshot, keep every cache entry warm.
    return report;
  }

  Metrics().bumps->Add(changed.size());
  for (const CubeColumnRef& column : changed) {
    cube.BumpColumnEpoch(column.query_pos, column.location_pos);
  }
  IndexSet indices = (*snapshot)->indices();  // copy
  for (const CubeColumnRef& column : changed) {
    indices.RefreshColumn(cube, column.query_pos, column.location_pos);
  }
  *snapshot =
      CubeSnapshot::MakeDerived(std::move(cube), std::move(indices),
                                (*snapshot)->lineage(),
                                (*snapshot)->version() + 1);
  report.published_new_snapshot = true;
  return report;
}

}  // namespace

Result<MarketplaceCubeMaintainer> MarketplaceCubeMaintainer::Make(
    MarketplaceDataset data, const GroupSpace& space, MarketMeasure measure,
    MeasureOptions options, CubeAxes axes, size_t parallelism) {
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveMarketplaceCubeAxes(data, space, axes));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      BuildMarketplaceCube(data, space, measure, options, resolved,
                           parallelism));
  MarketplaceCubeMaintainer maintainer(std::move(data), space, measure,
                                       std::move(options), std::move(resolved),
                                       parallelism);
  maintainer.snapshot_ = CubeSnapshot::Make(std::move(cube));
  return maintainer;
}

Result<UpsertReport> MarketplaceCubeMaintainer::UpsertCrawlBatch(
    const CrawlBatch& batch) {
  const UnfairnessCube& served = snapshot_->cube();

  // Validate the WHOLE batch before touching anything: a bad row must not
  // leave a half-applied batch behind.
  std::vector<CubeColumnRef> columns;
  columns.reserve(batch.rows.size());
  for (const CrawlBatchRow& row : batch.rows) {
    Result<size_t> query_pos = served.PosOf(Dimension::kQuery, row.query);
    if (!query_pos.ok()) {
      return Status::InvalidArgument(
          "crawl row query id " + std::to_string(row.query) +
          " is not on the cube axes (new queries need a cold rebuild)");
    }
    Result<size_t> location_pos =
        served.PosOf(Dimension::kLocation, row.location);
    if (!location_pos.ok()) {
      return Status::InvalidArgument(
          "crawl row location id " + std::to_string(row.location) +
          " is not on the cube axes (new locations need a cold rebuild)");
    }
    FAIRJOB_RETURN_IF_ERROR(data_.ValidateRanking(row.ranking));
    columns.push_back(CubeColumnRef{*query_pos, *location_pos});
  }

  // Apply in row order: the batch's last ranking for a cell wins, matching
  // "latest crawl wins" ingestion semantics.
  for (const CrawlBatchRow& row : batch.rows) {
    FAIRJOB_RETURN_IF_ERROR(
        data_.SetRanking(row.query, row.location, row.ranking));
  }

  // Cover any workers added since the table was built (a no-op for
  // ranking-only batches), then hand the up-to-date table to the delta
  // rebuild — touched columns probe bitmaps instead of relabeling the
  // population.
  membership_.Update(data_, space_);

  return ApplyColumnDelta(
      &snapshot_, batch.rows.size(), DedupColumns(std::move(columns)),
      [&](const std::vector<CubeColumnRef>& touched, CubeColumnSink* sink) {
        return BuildMarketplaceCubeColumns(data_, space_, membership_, measure_,
                                           options_, axes_, touched,
                                           parallelism_, sink);
      });
}

Result<SearchCubeMaintainer> SearchCubeMaintainer::Make(
    SearchDataset data, const GroupSpace& space, SearchMeasure measure,
    MeasureOptions options, CubeAxes axes, size_t parallelism) {
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveSearchCubeAxes(data, space, axes));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      BuildSearchCube(data, space, measure, options, resolved, parallelism));
  SearchCubeMaintainer maintainer(std::move(data), space, measure,
                                  std::move(options), std::move(resolved),
                                  parallelism);
  maintainer.snapshot_ = CubeSnapshot::Make(std::move(cube));
  return maintainer;
}

Result<UpsertReport> SearchCubeMaintainer::UpsertStudySnapshot(
    const StudySnapshot& snapshot) {
  const UnfairnessCube& served = snapshot_->cube();

  std::vector<CubeColumnRef> columns;
  columns.reserve(snapshot.cells.size());
  for (const StudySnapshotCell& cell : snapshot.cells) {
    Result<size_t> query_pos = served.PosOf(Dimension::kQuery, cell.query);
    if (!query_pos.ok()) {
      return Status::InvalidArgument(
          "study cell query id " + std::to_string(cell.query) +
          " is not on the cube axes (new queries need a cold rebuild)");
    }
    Result<size_t> location_pos =
        served.PosOf(Dimension::kLocation, cell.location);
    if (!location_pos.ok()) {
      return Status::InvalidArgument(
          "study cell location id " + std::to_string(cell.location) +
          " is not on the cube axes (new locations need a cold rebuild)");
    }
    FAIRJOB_RETURN_IF_ERROR(data_.ValidateObservations(cell.observations));
    columns.push_back(CubeColumnRef{*query_pos, *location_pos});
  }

  for (const StudySnapshotCell& cell : snapshot.cells) {
    FAIRJOB_RETURN_IF_ERROR(
        data_.SetObservations(cell.query, cell.location, cell.observations));
  }

  return ApplyColumnDelta(
      &snapshot_, snapshot.cells.size(), DedupColumns(std::move(columns)),
      [&](const std::vector<CubeColumnRef>& touched, CubeColumnSink* sink) {
        return BuildSearchCubeColumns(data_, space_, measure_, options_, axes_,
                                      touched, parallelism_, sink);
      });
}

}  // namespace fairjob
