#ifndef FAIRJOB_SERVE_CUBE_SNAPSHOT_H_
#define FAIRJOB_SERVE_CUBE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/indices.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// An immutable, atomically swappable serving state: one cube, its inverted
// indices, and the per-column epoch view the answer cache keys against
// (docs/serving.md, "Incremental maintenance & snapshots").
//
// Snapshots are the unit of RCU serving: `QuantificationService` holds the
// current snapshot in a `SnapshotPtr` (below), readers pin it once for the
// duration of a request, and a writer publishes a new snapshot with one
// pointer swap. Nothing inside a published snapshot may ever change — the
// delta path (serve/incremental.h) derives a *new* snapshot per upsert
// instead of mutating the served one.
//
// Identity is two-level:
//  * `lineage()` — FingerprintCube of the cube the snapshot family started
//    from. Two cold builds with bitwise-identical contents share a lineage
//    (so an identical rebuild keeps the cache warm); any other full rebuild
//    changes it and invalidates everything.
//  * per-column epochs (stored on the cube) — bumped by the delta path for
//    exactly the columns whose values changed, so cache entries binding only
//    untouched columns keep matching across upserts.
class CubeSnapshot {
 public:
  // Owning: takes the cube, builds indices from it, fingerprints it (the
  // O(cells) lineage computation happens here, once per family — never on
  // the delta path and never per request).
  static std::shared_ptr<const CubeSnapshot> Make(UnfairnessCube cube);

  // Owning, for the delta path: inherits lineage/version from the snapshot
  // this one was derived from instead of re-fingerprinting. The caller (the
  // maintainer) guarantees cube/indices consistency and bumped epochs.
  static std::shared_ptr<const CubeSnapshot> MakeDerived(UnfairnessCube cube,
                                                         IndexSet indices,
                                                         uint64_t lineage,
                                                         uint64_t version);

  // Non-owning: serves a caller-owned cube + indices (the pre-snapshot
  // QuantificationService contract). The backing objects must outlive the
  // snapshot and every in-flight request that pinned it — with RCU serving
  // there is no quiescence barrier to wait on.
  static std::shared_ptr<const CubeSnapshot> Borrow(const UnfairnessCube* cube,
                                                    const IndexSet* indices);

  const UnfairnessCube& cube() const { return *cube_; }
  const IndexSet& indices() const { return *indices_; }
  uint64_t lineage() const { return lineage_; }
  // Monotone flip counter within a maintainer's snapshot family; purely
  // observability (serve.snapshot.version), never part of cache identity.
  uint64_t version() const { return version_; }

  // Digest of (lineage, epochs of every (query, location) column a request
  // with these *normalized* selectors reads). The column set per target:
  //   kGroup    -> agg1 queries × agg2 locations
  //   kQuery    -> ALL queries  × agg2 locations (agg1 selects groups)
  //   kLocation -> agg2 queries × ALL locations  (agg1 selects groups)
  // Empty selector = whole axis. Group selectors never narrow the column
  // set — epochs are column-granular, which is conservative (a change in an
  // unselected group row of a read column re-keys the entry) but never
  // stale. Equal keys hash the same columns in the same order, so equal
  // keys ⇒ equal digests.
  uint64_t EpochDigest(Dimension target, const std::vector<size_t>& agg1,
                       const std::vector<size_t>& agg2) const;

  // EpochDigest over every column; precomputed once per snapshot so
  // unrestricted requests pay O(1), not O(columns), per cache probe.
  uint64_t full_epoch_digest() const { return full_epoch_digest_; }

 private:
  CubeSnapshot() = default;

  void Finish();  // resolves pointers + precomputes full_epoch_digest_

  std::optional<UnfairnessCube> owned_cube_;
  std::optional<IndexSet> owned_indices_;
  const UnfairnessCube* cube_ = nullptr;
  const IndexSet* indices_ = nullptr;
  uint64_t lineage_ = 0;
  uint64_t version_ = 0;
  uint64_t full_epoch_digest_ = 0;
};

// The RCU publication point: an atomically swappable shared_ptr slot.
//
// This is the same algorithm libstdc++ uses for
// std::atomic<std::shared_ptr> — a one-word spinlock guarding a pointer
// copy (atomic<shared_ptr> is not lock-free anywhere) — but with the
// reader's unlock properly release-fenced. libstdc++ 12 unlocks its load
// path with a *relaxed* RMW, so a reader's pointer copy and the next
// writer's swap are formally unordered; TSan reports that race, and the CI
// sanitizer matrix must stay clean.
//
// The critical section is a shared_ptr copy or swap (one refcount RMW plus
// two word moves) — never a computation, an allocation of cube data, or a
// snapshot destruction (Publish drops the replaced snapshot outside the
// lock). Readers therefore wait at most a few instructions behind any
// other thread, and a writer can never be starved: flips cost the same as
// reads.
class SnapshotPtr {
 public:
  SnapshotPtr() = default;
  explicit SnapshotPtr(std::shared_ptr<const CubeSnapshot> value)
      : value_(std::move(value)) {}

  SnapshotPtr(const SnapshotPtr&) = delete;
  SnapshotPtr& operator=(const SnapshotPtr&) = delete;

  // Pins the current snapshot: the returned shared_ptr keeps it alive for
  // as long as the caller holds it, across any number of flips.
  std::shared_ptr<const CubeSnapshot> Acquire() const {
    Lock();
    std::shared_ptr<const CubeSnapshot> pinned = value_;
    Unlock();
    return pinned;
  }

  // Publishes `next` as the current snapshot. The replaced snapshot's
  // reference is dropped after the lock is released, so its destructor
  // (cube + indices) never runs inside the critical section.
  void Publish(std::shared_ptr<const CubeSnapshot> next) {
    Lock();
    value_.swap(next);
    Unlock();
  }

 private:
  void Lock() const {
    while (locked_.exchange(1, std::memory_order_acquire) != 0) {
      // Test-and-test-and-set with a yield: on an oversubscribed machine a
      // holder preempted mid-copy should get the core back immediately.
      while (locked_.load(std::memory_order_relaxed) != 0) {
        std::this_thread::yield();
      }
    }
  }
  void Unlock() const { locked_.store(0, std::memory_order_release); }

  mutable std::atomic<uint32_t> locked_{0};
  std::shared_ptr<const CubeSnapshot> value_;
};

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_CUBE_SNAPSHOT_H_
