#ifndef FAIRJOB_CRAWL_CUBE_IO_H_
#define FAIRJOB_CRAWL_CUBE_IO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Persistence for precomputed unfairness cubes — the F-Box's expensive step
// is evaluating the measures over a crawl; a saved cube lets later analysis
// sessions (top-k, comparisons, statistics) skip it.
//
// Two interchangeable formats hold the same information (axes + names +
// present cells) and round-trip bitwise-identically through each other
// (cross-checked in tests/cube_io_test.cc):
//
//  * CSV — human-readable interop format and the differential reference.
//  * Binary — versioned little-endian format for scale: a fixed header
//    (magic, version, layout flag, axis sizes, present count, payload CRC32)
//    followed by axis-id tables, a name table, and either a dense cell
//    section (f64 values in (query · L + location) · G + group order plus a
//    presence bitmap — the order a sharded build streams columns in) or a
//    sparse section (delta-encoded varint cell indices interleaved with f64
//    values). Dense files open O(ms) via mmap (MappedCube) with random-access
//    Get; both layouts materialize back into an UnfairnessCube.
//
// CSV format: rows
//   axis,<group|query|location>,<id>,<name>      one per axis entry
//   cell,<group pos>,<query pos>,<location pos>,<value>   one per present cell
// Names are optional context (resolved via the resolver callbacks below) and
// round-trip verbatim; missing cells are simply absent.

// A name lookup per dimension; may return "" when names are unavailable.
using AxisNamer = std::string (*)(Dimension, int32_t, const void* context);

std::vector<std::vector<std::string>> CubeToCsvRows(
    const UnfairnessCube& cube,
    AxisNamer namer = nullptr, const void* namer_context = nullptr);

// Reconstructs a cube (axes + present cells) from rows produced by
// CubeToCsvRows. Errors: InvalidArgument on malformed rows, duplicate axis
// ids, or out-of-range cell positions.
Result<UnfairnessCube> CubeFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// Names from the CSV, parallel to the cube axes ("" when absent).
struct CubeNames {
  std::vector<std::string> groups;
  std::vector<std::string> queries;
  std::vector<std::string> locations;
};
Result<CubeNames> CubeNamesFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// File convenience wrappers. Errors: IOError / InvalidArgument.
Status SaveCube(const std::string& path, const UnfairnessCube& cube,
                AxisNamer namer = nullptr, const void* namer_context = nullptr);
Result<UnfairnessCube> LoadCube(const std::string& path);

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

// Bumped on any incompatible layout change; readers reject other versions.
inline constexpr uint32_t kBinaryCubeVersion = 1;

struct BinaryCubeWriteOptions {
  enum class Layout { kAuto, kDense, kSparse };
  // kAuto picks dense when at least a quarter of the cells are present
  // (a sparse cell costs ~9–13 bytes against dense's 8 + 1 bit, and only
  // dense supports mmap random access).
  Layout layout = Layout::kAuto;
};

// Writes `cube` (and optional axis names, parallel to the cube axes) as one
// binary file. Errors: IOError on filesystem failure, InvalidArgument when
// `names` axis lengths do not match the cube.
Status SaveCubeBinary(const std::string& path, const UnfairnessCube& cube,
                      const CubeNames* names = nullptr,
                      const BinaryCubeWriteOptions& options = {});

// Reads a binary cube file back into memory (either layout). Errors:
// IOError on filesystem failure; InvalidArgument on bad magic, unsupported
// version, truncation, or CRC mismatch.
Result<UnfairnessCube> LoadCubeBinary(const std::string& path);

// mmap-backed random-access view of a binary cube file: Open maps the file
// and validates the header (plus the payload CRC unless disabled), so a
// multi-GB cube is servable in milliseconds without copying cell data.
// Get is O(1) on dense files; sparse files support Materialize/Names only.
// The mapping is read-only and safely shared across threads.
class MappedCube {
 public:
  struct Options {
    // Full-payload CRC32 check at Open (one sequential pass). Disable to
    // make Open O(1) when the file is trusted (e.g. written this process).
    bool verify_checksum = true;
  };

  static Result<MappedCube> Open(const std::string& path,
                                 const Options& options);
  static Result<MappedCube> Open(const std::string& path) {
    return Open(path, Options());
  }

  MappedCube(MappedCube&& other) noexcept;
  MappedCube& operator=(MappedCube&& other) noexcept;
  MappedCube(const MappedCube&) = delete;
  MappedCube& operator=(const MappedCube&) = delete;
  ~MappedCube();

  size_t axis_size(Dimension d) const { return axis_sizes_[AxisIndex(d)]; }
  int32_t axis_id(Dimension d, size_t pos) const;
  bool dense() const { return dense_; }
  size_t num_cells() const;
  uint64_t num_present() const { return present_; }
  size_t file_bytes() const { return bytes_; }

  // Dense files only (returns nullopt unconditionally on sparse files, like
  // an all-missing cube); positions must be in range.
  std::optional<double> Get(size_t g, size_t q, size_t l) const;

  // Decodes the full file into an UnfairnessCube / CubeNames (both layouts).
  Result<UnfairnessCube> Materialize() const;
  Result<CubeNames> Names() const;

 private:
  MappedCube() = default;

  void Release();

  static size_t AxisIndex(Dimension d) { return static_cast<size_t>(d); }

  const unsigned char* data_ = nullptr;  // whole file
  size_t bytes_ = 0;
  bool mapped_ = false;  // mmap'd (else heap-owned fallback)
  bool dense_ = false;
  uint64_t present_ = 0;
  size_t axis_sizes_[3] = {0, 0, 0};
  const unsigned char* axis_ids_ = nullptr;   // 3 consecutive i32 tables
  const unsigned char* names_ = nullptr;      // length-prefixed name table
  const unsigned char* cells_ = nullptr;      // dense values / sparse stream
  const unsigned char* presence_ = nullptr;   // dense bitmap (dense only)
  size_t cells_bytes_ = 0;
};

// Streams a dense binary cube file column-by-column: the CubeColumnSink fed
// to BuildMarketplaceCubeSharded / BuildSearchCubeSharded when the cube
// should land on disk instead of in memory. Create sizes the file from the
// resolved axes (unstreamed columns stay all-missing); Consume accepts
// columns from any thread in any order (writes to disjoint offsets);
// Finish seals the file — presence bitmap, CRC, header — and must be called
// exactly once before destruction for the file to be readable.
class BinaryCubeColumnWriter final : public CubeColumnSink {
 public:
  static Result<std::unique_ptr<BinaryCubeColumnWriter>> Create(
      const std::string& path, const CubeAxes& axes,
      const CubeNames* names = nullptr);

  ~BinaryCubeColumnWriter() override;

  Status Consume(size_t query_pos, size_t location_pos,
                 const std::optional<double>* values,
                 size_t num_groups) override;
  Status Finish();

 private:
  class Impl;
  explicit BinaryCubeColumnWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_CUBE_IO_H_
