#ifndef FAIRJOB_CRAWL_CUBE_IO_H_
#define FAIRJOB_CRAWL_CUBE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Persistence for precomputed unfairness cubes — the F-Box's expensive step
// is evaluating the measures over a crawl; a saved cube lets later analysis
// sessions (top-k, comparisons, statistics) skip it.
//
// Format: CSV rows
//   axis,<group|query|location>,<id>,<name>      one per axis entry
//   cell,<group pos>,<query pos>,<location pos>,<value>   one per present cell
// Names are optional context (resolved via the resolver callbacks below) and
// round-trip verbatim; missing cells are simply absent.

// A name lookup per dimension; may return "" when names are unavailable.
using AxisNamer = std::string (*)(Dimension, int32_t, const void* context);

std::vector<std::vector<std::string>> CubeToCsvRows(
    const UnfairnessCube& cube,
    AxisNamer namer = nullptr, const void* namer_context = nullptr);

// Reconstructs a cube (axes + present cells) from rows produced by
// CubeToCsvRows. Errors: InvalidArgument on malformed rows, duplicate axis
// ids, or out-of-range cell positions.
Result<UnfairnessCube> CubeFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// Names from the CSV, parallel to the cube axes ("" when absent).
struct CubeNames {
  std::vector<std::string> groups;
  std::vector<std::string> queries;
  std::vector<std::string> locations;
};
Result<CubeNames> CubeNamesFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// File convenience wrappers. Errors: IOError / InvalidArgument.
Status SaveCube(const std::string& path, const UnfairnessCube& cube,
                AxisNamer namer = nullptr, const void* namer_context = nullptr);
Result<UnfairnessCube> LoadCube(const std::string& path);

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_CUBE_IO_H_
