#include "crawl/profile_store.h"

#include <cstdlib>

#include "common/string_util.h"

namespace fairjob {

Status ProfileStore::Upsert(RawProfile profile) {
  if (profile.worker_name.empty()) {
    return Status::InvalidArgument("profile needs a worker name");
  }
  auto it = by_name_.find(profile.worker_name);
  if (it != by_name_.end()) {
    profiles_[it->second] = std::move(profile);
    return Status::OK();
  }
  by_name_.emplace(profile.worker_name, profiles_.size());
  profiles_.push_back(std::move(profile));
  return Status::OK();
}

Result<RawProfile> ProfileStore::Get(const std::string& worker_name) const {
  auto it = by_name_.find(worker_name);
  if (it == by_name_.end()) {
    return Status::NotFound("no profile for worker '" + worker_name + "'");
  }
  return profiles_[it->second];
}

std::vector<std::vector<std::string>> ProfileStore::ToCsvRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"worker", "picture", "hourly_rate", "num_reviews", "badges"});
  for (const RawProfile& p : profiles_) {
    rows.push_back({p.worker_name, p.picture_ref,
                    FormatDouble(p.hourly_rate, 2),
                    std::to_string(p.num_reviews), p.badges});
  }
  return rows;
}

Result<ProfileStore> ProfileStore::FromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty() || rows[0].size() != 5 || rows[0][0] != "worker") {
    return Status::InvalidArgument("missing or malformed profile CSV header");
  }
  ProfileStore store;
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 5) {
      return Status::InvalidArgument("profile CSV row " + std::to_string(i) +
                                     " has " + std::to_string(row.size()) +
                                     " fields, expected 5");
    }
    RawProfile p;
    p.worker_name = row[0];
    p.picture_ref = row[1];
    char* end = nullptr;
    p.hourly_rate = std::strtod(row[2].c_str(), &end);
    if (end == row[2].c_str()) {
      return Status::InvalidArgument("bad hourly_rate in row " +
                                     std::to_string(i));
    }
    p.num_reviews = static_cast<int>(std::strtol(row[3].c_str(), &end, 10));
    if (end == row[3].c_str()) {
      return Status::InvalidArgument("bad num_reviews in row " +
                                     std::to_string(i));
    }
    p.badges = row[4];
    FAIRJOB_RETURN_IF_ERROR(store.Upsert(std::move(p)));
  }
  return store;
}

}  // namespace fairjob
