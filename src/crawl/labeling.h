#ifndef FAIRJOB_CRAWL_LABELING_H_
#define FAIRJOB_CRAWL_LABELING_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/attribute_schema.h"

namespace fairjob {

// Simulation of the paper's AMT labeling stage: three crowd contributors
// label each profile picture with gender and ethnicity, and a per-attribute
// majority vote decides the final label. Annotator noise lets tests and
// benches measure how label errors propagate into unfairness values.

struct LabelingConfig {
  size_t annotators_per_item = 3;
  // Probability an annotator reports a wrong value for one attribute
  // (uniform over the wrong values).
  double error_rate = 0.05;
};

// One annotator's label for one item: the truth, independently corrupted per
// attribute with probability `error_rate`.
Demographics SimulateAnnotation(const AttributeSchema& schema,
                                const Demographics& truth, double error_rate,
                                Rng* rng);

// Per-attribute plurality vote across annotator labels; ties are resolved
// toward the smallest ValueId (deterministic; documented behaviour).
// Errors: InvalidArgument on an empty label set or inconsistent sizes.
Result<Demographics> MajorityVote(const AttributeSchema& schema,
                                  const std::vector<Demographics>& labels);

struct LabelingOutcome {
  std::vector<Demographics> labels;  // majority-voted, parallel to input
  // Fraction of (item, attribute) pairs labeled correctly.
  double attribute_accuracy = 0.0;
  // Items whose full demographic vector is correct.
  size_t items_fully_correct = 0;
};

// Runs the whole stage over a population of ground-truth demographics.
// Errors: InvalidArgument on a bad config (no annotators, error rate outside
// [0, 1]) or invalid truths.
Result<LabelingOutcome> RunLabeling(const AttributeSchema& schema,
                                    const std::vector<Demographics>& truths,
                                    const LabelingConfig& config, Rng* rng);

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_LABELING_H_
