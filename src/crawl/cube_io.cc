#include "crawl/cube_io.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "crawl/csv.h"

#if defined(__unix__) || defined(__APPLE__)
#define FAIRJOB_CUBE_IO_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fairjob {
namespace {

const char* DimensionTag(Dimension d) { return DimensionName(d); }

Result<Dimension> DimensionFromTag(const std::string& tag) {
  if (tag == "group") return Dimension::kGroup;
  if (tag == "query") return Dimension::kQuery;
  if (tag == "location") return Dimension::kLocation;
  return Status::InvalidArgument("unknown cube axis tag '" + tag + "'");
}

// Shortest representation that strtod parses back to the same bits, so the
// CSV format round-trips cell values exactly (fixed-decimal formatting
// truncates small magnitudes and breaks the binary<->CSV differential).
std::string FormatRoundTripDouble(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return FormatDouble(value, 17);
  return std::string(buf, ptr);
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric field '" + s + "'");
  }
  return v;
}

Result<long> ParseLong(const std::string& s) {
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer field '" + s + "'");
  }
  return v;
}

}  // namespace

std::vector<std::vector<std::string>> CubeToCsvRows(const UnfairnessCube& cube,
                                                    AxisNamer namer,
                                                    const void* namer_context) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cube.axis_size(Dimension::kGroup) +
               cube.axis_size(Dimension::kQuery) +
               cube.axis_size(Dimension::kLocation) + cube.num_present());
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    for (size_t pos = 0; pos < cube.axis_size(d); ++pos) {
      int32_t id = cube.axis_id(d, pos);
      std::string name =
          namer != nullptr ? namer(d, id, namer_context) : std::string();
      rows.push_back({"axis", DimensionTag(d), std::to_string(id),
                      std::move(name)});
    }
  }
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < cube.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < cube.axis_size(Dimension::kLocation); ++l) {
        std::optional<double> v = cube.Get(g, q, l);
        if (v.has_value()) {
          rows.push_back({"cell", std::to_string(g), std::to_string(q),
                          std::to_string(l), FormatRoundTripDouble(*v)});
        }
      }
    }
  }
  return rows;
}

Result<UnfairnessCube> CubeFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<int32_t> axes[3];
  // Size the axis vectors up front (a million-entry axis would otherwise
  // reallocate its way through the parse).
  size_t axis_counts[3] = {0, 0, 0};
  for (const auto& row : rows) {
    if (row.size() >= 2 && row[0] == "axis") {
      Result<Dimension> d = DimensionFromTag(row[1]);
      if (d.ok()) ++axis_counts[static_cast<size_t>(*d)];
    }
  }
  for (size_t i = 0; i < 3; ++i) axes[i].reserve(axis_counts[i]);
  // First pass: axes (must precede cells to size the cube).
  for (const auto& row : rows) {
    if (row.empty()) continue;
    if (row[0] == "axis") {
      if (row.size() != 4) {
        return Status::InvalidArgument("axis row needs 4 fields");
      }
      FAIRJOB_ASSIGN_OR_RETURN(Dimension d, DimensionFromTag(row[1]));
      FAIRJOB_ASSIGN_OR_RETURN(long id, ParseLong(row[2]));
      axes[static_cast<size_t>(d)].push_back(static_cast<int32_t>(id));
    } else if (row[0] != "cell") {
      return Status::InvalidArgument("unknown cube CSV row kind '" + row[0] +
                                     "'");
    }
  }
  FAIRJOB_ASSIGN_OR_RETURN(UnfairnessCube cube,
                           UnfairnessCube::Make(axes[0], axes[1], axes[2]));

  for (const auto& row : rows) {
    if (row.empty() || row[0] != "cell") continue;
    if (row.size() != 5) {
      return Status::InvalidArgument("cell row needs 5 fields");
    }
    FAIRJOB_ASSIGN_OR_RETURN(long g, ParseLong(row[1]));
    FAIRJOB_ASSIGN_OR_RETURN(long q, ParseLong(row[2]));
    FAIRJOB_ASSIGN_OR_RETURN(long l, ParseLong(row[3]));
    FAIRJOB_ASSIGN_OR_RETURN(double v, ParseDouble(row[4]));
    if (g < 0 || static_cast<size_t>(g) >= cube.axis_size(Dimension::kGroup) ||
        q < 0 || static_cast<size_t>(q) >= cube.axis_size(Dimension::kQuery) ||
        l < 0 ||
        static_cast<size_t>(l) >= cube.axis_size(Dimension::kLocation)) {
      return Status::InvalidArgument("cell position out of range");
    }
    cube.Set(static_cast<size_t>(g), static_cast<size_t>(q),
             static_cast<size_t>(l), v);
  }
  return cube;
}

Result<CubeNames> CubeNamesFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  CubeNames names;
  size_t axis_rows = 0;
  for (const auto& row : rows) {
    if (!row.empty() && row[0] == "axis") ++axis_rows;
  }
  names.groups.reserve(axis_rows);
  for (const auto& row : rows) {
    if (row.empty() || row[0] != "axis") continue;
    if (row.size() != 4) {
      return Status::InvalidArgument("axis row needs 4 fields");
    }
    FAIRJOB_ASSIGN_OR_RETURN(Dimension d, DimensionFromTag(row[1]));
    switch (d) {
      case Dimension::kGroup:
        names.groups.push_back(row[3]);
        break;
      case Dimension::kQuery:
        names.queries.push_back(row[3]);
        break;
      case Dimension::kLocation:
        names.locations.push_back(row[3]);
        break;
    }
  }
  return names;
}

Status SaveCube(const std::string& path, const UnfairnessCube& cube,
                AxisNamer namer, const void* namer_context) {
  return WriteCsvFile(path, CubeToCsvRows(cube, namer, namer_context));
}

Result<UnfairnessCube> LoadCube(const std::string& path) {
  FAIRJOB_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  return CubeFromCsvRows(rows);
}

// ---------------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------------

namespace {

// File layout (all integers little-endian):
//   [ 0, 64)  header: magic[8] version:u32 flags:u32 G:u64 Q:u64 L:u64
//             present:u64 payload_bytes:u64 payload_crc:u32 header_crc:u32
//   [64, ...) payload:
//             axis ids        i32 × (G + Q + L), group/query/location order
//             name table      (len:u32 bytes[len]) × (G + Q + L)
//             zero padding    to the next 8-byte file offset
//             cell section:
//               dense:  value:f64 × G·Q·L in (q·L + l)·G + g order, then
//                       presence bitmap u64 × ⌈cells/64⌉ (bit c of word
//                       c/64 set iff cell c present)
//               sparse: per present cell, ascending index: varint delta
//                       from the previous index (previous starts at −1,
//                       so deltas are ≥ 1) followed by value:f64
// header_crc covers header bytes [0, 60); payload_crc covers [64, EOF).
constexpr char kBinaryCubeMagic[8] = {'F', 'J', 'C', 'U', 'B', 'E', '0', '1'};
constexpr size_t kBinaryCubeHeaderBytes = 64;
constexpr uint32_t kBinaryCubeFlagSparse = 1u << 0;
constexpr double kAutoDenseThreshold = 0.25;

// `cube.io.*` observability (docs/observability.md).
LatencyHistogram* BinarySaveLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("cube.io.binary_save_us");
  return histogram;
}
LatencyHistogram* BinaryOpenLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("cube.io.binary_open_us");
  return histogram;
}
Counter* BinaryBytesWritten() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("cube.io.binary_bytes_written");
  return counter;
}
Counter* ColumnsStreamed() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("cube.io.columns_streamed");
  return counter;
}
Counter* CrcFailures() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("cube.io.crc_failures");
  return counter;
}

// Table-driven CRC32 (reflected, polynomial 0xEDB88320 — the zlib/PNG one),
// slicing-by-8: eight lookup tables let the hot loop fold 8 bytes per
// iteration, which matters when Open checksums a multi-hundred-MB cube file.
using Crc32Tables = uint32_t[8][256];

const Crc32Tables& Crc32Table() {
  static const Crc32Tables& tables = [] () -> const Crc32Tables& {
    static Crc32Tables t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (size_t s = 1; s < 8; ++s) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
      }
    }
    return t;
  }();
  return tables;
}

uint32_t Crc32Update(uint32_t crc, const void* data, size_t bytes) {
  const Crc32Tables& t = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (bytes >= 8) {
    uint32_t lo = (uint32_t{p[0]} | uint32_t{p[1]} << 8 |
                   uint32_t{p[2]} << 16 | uint32_t{p[3]} << 24) ^
                  crc;
    uint32_t hi = uint32_t{p[4]} | uint32_t{p[5]} << 8 |
                  uint32_t{p[6]} << 16 | uint32_t{p[7]} << 24;
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
          t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    bytes -= 8;
  }
  for (size_t i = 0; i < bytes; ++i) {
    crc = t[0][(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t bytes) {
  return Crc32Update(0, data, bytes);
}

// Explicit little-endian encoding, so files are byte-identical across hosts.
void StoreU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}
void StoreU64(unsigned char* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}
void StoreI32(unsigned char* p, int32_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
}
void StoreF64(unsigned char* p, double v) {
  StoreU64(p, std::bit_cast<uint64_t>(v));
}
uint32_t LoadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
uint64_t LoadU64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}
int32_t LoadI32(const unsigned char* p) {
  return static_cast<int32_t>(LoadU32(p));
}
double LoadF64(const unsigned char* p) {
  return std::bit_cast<double>(LoadU64(p));
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Decodes one varint from [p, end); returns nullptr on truncation/overflow.
const unsigned char* ParseVarint(const unsigned char* p,
                                 const unsigned char* end, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return nullptr;
    unsigned char byte = *p++;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return p;
    }
  }
  return nullptr;
}

struct BinaryCubeHeader {
  uint32_t flags = 0;
  uint64_t dims[3] = {0, 0, 0};
  uint64_t present = 0;
  uint64_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

void SerializeHeader(const BinaryCubeHeader& h,
                     unsigned char out[kBinaryCubeHeaderBytes]) {
  std::memcpy(out, kBinaryCubeMagic, 8);
  StoreU32(out + 8, kBinaryCubeVersion);
  StoreU32(out + 12, h.flags);
  StoreU64(out + 16, h.dims[0]);
  StoreU64(out + 24, h.dims[1]);
  StoreU64(out + 32, h.dims[2]);
  StoreU64(out + 40, h.present);
  StoreU64(out + 48, h.payload_bytes);
  StoreU32(out + 56, h.payload_crc);
  StoreU32(out + 60, Crc32(out, 60));
}

Result<BinaryCubeHeader> ParseHeader(const unsigned char* data, size_t bytes) {
  if (bytes < kBinaryCubeHeaderBytes) {
    return Status::InvalidArgument("binary cube file truncated: " +
                                   std::to_string(bytes) +
                                   " bytes is smaller than the header");
  }
  if (std::memcmp(data, kBinaryCubeMagic, 8) != 0) {
    return Status::InvalidArgument(
        "not a binary cube file (bad magic); expected the FJCUBE01 header");
  }
  uint32_t version = LoadU32(data + 8);
  if (version != kBinaryCubeVersion) {
    return Status::InvalidArgument(
        "unsupported binary cube version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kBinaryCubeVersion) +
        ")");
  }
  if (LoadU32(data + 60) != Crc32(data, 60)) {
    CrcFailures()->Add(1);
    return Status::InvalidArgument("binary cube header checksum mismatch");
  }
  BinaryCubeHeader h;
  h.flags = LoadU32(data + 12);
  h.dims[0] = LoadU64(data + 16);
  h.dims[1] = LoadU64(data + 24);
  h.dims[2] = LoadU64(data + 32);
  h.present = LoadU64(data + 40);
  h.payload_bytes = LoadU64(data + 48);
  h.payload_crc = LoadU32(data + 56);
  return h;
}

size_t AxisTableBytes(const BinaryCubeHeader& h) {
  return 4 * static_cast<size_t>(h.dims[0] + h.dims[1] + h.dims[2]);
}

size_t PadTo8(size_t offset) { return (8 - offset % 8) % 8; }

void AppendAxisIds(std::string* out, const std::vector<int32_t>& ids) {
  for (int32_t id : ids) {
    unsigned char buf[4];
    StoreI32(buf, id);
    out->append(reinterpret_cast<const char*>(buf), 4);
  }
}

void AppendNames(std::string* out, const std::vector<std::string>* names,
                 size_t axis_size) {
  for (size_t i = 0; i < axis_size; ++i) {
    const std::string& name =
        names != nullptr && i < names->size() ? (*names)[i] : std::string();
    unsigned char buf[4];
    StoreU32(buf, static_cast<uint32_t>(name.size()));
    out->append(reinterpret_cast<const char*>(buf), 4);
    out->append(name);
  }
}

std::vector<int32_t> AxisIdsOf(const UnfairnessCube& cube, Dimension d) {
  std::vector<int32_t> ids(cube.axis_size(d));
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = cube.axis_id(d, i);
  return ids;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
#if defined(FAIRJOB_CUBE_IO_POSIX)
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("short write to '" + path + "'");
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
#else
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (n != bytes.size()) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
#endif
}

}  // namespace

Status SaveCubeBinary(const std::string& path, const UnfairnessCube& cube,
                      const CubeNames* names,
                      const BinaryCubeWriteOptions& options) {
  ScopedTimer timer(BinarySaveLatency());
  size_t g_size = cube.axis_size(Dimension::kGroup);
  size_t q_size = cube.axis_size(Dimension::kQuery);
  size_t l_size = cube.axis_size(Dimension::kLocation);
  if (names != nullptr) {
    if (names->groups.size() != g_size || names->queries.size() != q_size ||
        names->locations.size() != l_size) {
      return Status::InvalidArgument(
          "cube names axis lengths do not match the cube");
    }
  }
  size_t cells = cube.num_cells();
  size_t present = cube.num_present();
  bool sparse;
  switch (options.layout) {
    case BinaryCubeWriteOptions::Layout::kDense:
      sparse = false;
      break;
    case BinaryCubeWriteOptions::Layout::kSparse:
      sparse = true;
      break;
    case BinaryCubeWriteOptions::Layout::kAuto:
    default:
      sparse = cells == 0 || static_cast<double>(present) <
                                 kAutoDenseThreshold *
                                     static_cast<double>(cells);
      break;
  }

  std::string payload;
  if (!sparse) {
    payload.reserve(4 * (g_size + q_size + l_size) + 8 * cells +
                    8 * ((cells + 63) / 64) + 64);
  }
  AppendAxisIds(&payload, AxisIdsOf(cube, Dimension::kGroup));
  AppendAxisIds(&payload, AxisIdsOf(cube, Dimension::kQuery));
  AppendAxisIds(&payload, AxisIdsOf(cube, Dimension::kLocation));
  AppendNames(&payload, names != nullptr ? &names->groups : nullptr, g_size);
  AppendNames(&payload, names != nullptr ? &names->queries : nullptr, q_size);
  AppendNames(&payload, names != nullptr ? &names->locations : nullptr,
              l_size);
  payload.append(PadTo8(kBinaryCubeHeaderBytes + payload.size()), '\0');

  // Cells in ascending (q·L + l)·G + g order for both layouts.
  if (!sparse) {
    std::vector<uint64_t> presence((cells + 63) / 64, 0);
    size_t index = 0;
    unsigned char buf[8];
    for (size_t q = 0; q < q_size; ++q) {
      for (size_t l = 0; l < l_size; ++l) {
        for (size_t g = 0; g < g_size; ++g, ++index) {
          std::optional<double> v = cube.Get(g, q, l);
          StoreF64(buf, v.value_or(0.0));
          payload.append(reinterpret_cast<const char*>(buf), 8);
          if (v.has_value()) {
            presence[index / 64] |= uint64_t{1} << (index % 64);
          }
        }
      }
    }
    for (uint64_t word : presence) {
      StoreU64(buf, word);
      payload.append(reinterpret_cast<const char*>(buf), 8);
    }
  } else {
    uint64_t prev = uint64_t(-1);
    size_t index = 0;
    unsigned char buf[8];
    for (size_t q = 0; q < q_size; ++q) {
      for (size_t l = 0; l < l_size; ++l) {
        for (size_t g = 0; g < g_size; ++g, ++index) {
          std::optional<double> v = cube.Get(g, q, l);
          if (!v.has_value()) continue;
          AppendVarint(&payload, index - prev);
          prev = index;
          StoreF64(buf, *v);
          payload.append(reinterpret_cast<const char*>(buf), 8);
        }
      }
    }
  }

  BinaryCubeHeader header;
  header.flags = sparse ? kBinaryCubeFlagSparse : 0;
  header.dims[0] = g_size;
  header.dims[1] = q_size;
  header.dims[2] = l_size;
  header.present = present;
  header.payload_bytes = payload.size();
  header.payload_crc = Crc32(payload.data(), payload.size());

  std::string file(kBinaryCubeHeaderBytes, '\0');
  SerializeHeader(header,
                  reinterpret_cast<unsigned char*>(file.data()));
  file += payload;
  FAIRJOB_RETURN_IF_ERROR(WriteFileBytes(path, file));
  BinaryBytesWritten()->Add(file.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MappedCube
// ---------------------------------------------------------------------------

MappedCube::MappedCube(MappedCube&& other) noexcept {
  *this = std::move(other);
}

MappedCube& MappedCube::operator=(MappedCube&& other) noexcept {
  if (this == &other) return *this;
  Release();
  data_ = other.data_;
  bytes_ = other.bytes_;
  mapped_ = other.mapped_;
  dense_ = other.dense_;
  present_ = other.present_;
  for (size_t i = 0; i < 3; ++i) axis_sizes_[i] = other.axis_sizes_[i];
  axis_ids_ = other.axis_ids_;
  names_ = other.names_;
  cells_ = other.cells_;
  presence_ = other.presence_;
  cells_bytes_ = other.cells_bytes_;
  other.data_ = nullptr;
  other.bytes_ = 0;
  other.mapped_ = false;
  return *this;
}

MappedCube::~MappedCube() { Release(); }

void MappedCube::Release() {
  if (data_ == nullptr) return;
#if defined(FAIRJOB_CUBE_IO_POSIX)
  if (mapped_) {
    ::munmap(const_cast<unsigned char*>(data_), bytes_);
    data_ = nullptr;
    return;
  }
#endif
  delete[] data_;
  data_ = nullptr;
}

Result<MappedCube> MappedCube::Open(const std::string& path,
                                    const Options& options) {
  ScopedTimer timer(BinaryOpenLatency());
  MappedCube cube;
#if defined(FAIRJOB_CUBE_IO_POSIX)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "'");
  }
  cube.bytes_ = static_cast<size_t>(st.st_size);
  void* mapping = cube.bytes_ == 0
                      ? MAP_FAILED
                      : ::mmap(nullptr, cube.bytes_, PROT_READ, MAP_PRIVATE,
                               fd, 0);
  if (mapping != MAP_FAILED) {
    cube.data_ = static_cast<const unsigned char*>(mapping);
    cube.mapped_ = true;
    ::close(fd);
  } else {
    // Zero-byte or unmappable file: fall back to a heap read so the header
    // validation below reports the real problem.
    unsigned char* buffer = new unsigned char[cube.bytes_ + 1];
    size_t done = 0;
    while (done < cube.bytes_) {
      ssize_t n = ::pread(fd, buffer + done, cube.bytes_ - done,
                          static_cast<off_t>(done));
      if (n <= 0) {
        delete[] buffer;
        ::close(fd);
        return Status::IOError("short read from '" + path + "'");
      }
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    cube.data_ = buffer;
    cube.mapped_ = false;
  }
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat '" + path + "'");
  }
  cube.bytes_ = static_cast<size_t>(size);
  unsigned char* buffer = new unsigned char[cube.bytes_ + 1];
  size_t n = std::fread(buffer, 1, cube.bytes_, f);
  std::fclose(f);
  if (n != cube.bytes_) {
    delete[] buffer;
    return Status::IOError("short read from '" + path + "'");
  }
  cube.data_ = buffer;
  cube.mapped_ = false;
#endif

  FAIRJOB_ASSIGN_OR_RETURN(BinaryCubeHeader header,
                           ParseHeader(cube.data_, cube.bytes_));
  if (header.payload_bytes != cube.bytes_ - kBinaryCubeHeaderBytes) {
    return Status::InvalidArgument(
        "binary cube file truncated: header promises " +
        std::to_string(header.payload_bytes) + " payload bytes, file has " +
        std::to_string(cube.bytes_ - kBinaryCubeHeaderBytes));
  }
  const unsigned char* payload = cube.data_ + kBinaryCubeHeaderBytes;
  if (options.verify_checksum &&
      Crc32(payload, header.payload_bytes) != header.payload_crc) {
    CrcFailures()->Add(1);
    return Status::InvalidArgument("binary cube payload checksum mismatch");
  }

  cube.dense_ = (header.flags & kBinaryCubeFlagSparse) == 0;
  cube.present_ = header.present;
  for (size_t i = 0; i < 3; ++i) {
    if (header.dims[i] > (uint64_t{1} << 31)) {
      return Status::InvalidArgument(
          "binary cube axis size " + std::to_string(header.dims[i]) +
          " is implausibly large (corrupt header?)");
    }
    cube.axis_sizes_[i] = static_cast<size_t>(header.dims[i]);
  }
  size_t cells = cube.num_cells();
  if (cube.axis_sizes_[0] != 0 && cube.axis_sizes_[1] != 0 &&
      cells / cube.axis_sizes_[0] / cube.axis_sizes_[1] !=
          cube.axis_sizes_[2]) {
    return Status::InvalidArgument("binary cube axis sizes overflow");
  }
  if (cube.present_ > cells) {
    return Status::InvalidArgument(
        "binary cube header claims more present cells than exist");
  }

  // Walk the variable-length sections with bounds checks.
  size_t remaining = header.payload_bytes;
  const unsigned char* p = payload;
  size_t axis_bytes = AxisTableBytes(header);
  if (remaining < axis_bytes) {
    return Status::InvalidArgument("binary cube axis table truncated");
  }
  cube.axis_ids_ = p;
  p += axis_bytes;
  remaining -= axis_bytes;
  cube.names_ = p;
  size_t total_axis = cube.axis_sizes_[0] + cube.axis_sizes_[1] +
                      cube.axis_sizes_[2];
  for (size_t i = 0; i < total_axis; ++i) {
    if (remaining < 4) {
      return Status::InvalidArgument("binary cube name table truncated");
    }
    uint32_t len = LoadU32(p);
    p += 4;
    remaining -= 4;
    if (remaining < len) {
      return Status::InvalidArgument("binary cube name table truncated");
    }
    p += len;
    remaining -= len;
  }
  size_t pad = PadTo8(static_cast<size_t>(p - cube.data_));
  if (remaining < pad) {
    return Status::InvalidArgument("binary cube cell section truncated");
  }
  p += pad;
  remaining -= pad;
  cube.cells_ = p;
  cube.cells_bytes_ = remaining;
  if (cube.dense_) {
    size_t expected = 8 * cells + 8 * ((cells + 63) / 64);
    if (remaining != expected) {
      return Status::InvalidArgument(
          "binary cube dense cell section has " + std::to_string(remaining) +
          " bytes, expected " + std::to_string(expected));
    }
    cube.presence_ = cube.cells_ + 8 * cells;
  }
  return cube;
}

int32_t MappedCube::axis_id(Dimension d, size_t pos) const {
  size_t base = 0;
  for (size_t i = 0; i < AxisIndex(d); ++i) base += axis_sizes_[i];
  return LoadI32(axis_ids_ + 4 * (base + pos));
}

size_t MappedCube::num_cells() const {
  return axis_sizes_[0] * axis_sizes_[1] * axis_sizes_[2];
}

std::optional<double> MappedCube::Get(size_t g, size_t q, size_t l) const {
  if (!dense_) return std::nullopt;
  size_t index = (q * axis_sizes_[2] + l) * axis_sizes_[0] + g;
  uint64_t word = LoadU64(presence_ + 8 * (index / 64));
  if ((word >> (index % 64) & 1) == 0) return std::nullopt;
  return LoadF64(cells_ + 8 * index);
}

Result<CubeNames> MappedCube::Names() const {
  CubeNames names;
  names.groups.reserve(axis_sizes_[0]);
  names.queries.reserve(axis_sizes_[1]);
  names.locations.reserve(axis_sizes_[2]);
  const unsigned char* p = names_;
  for (size_t axis = 0; axis < 3; ++axis) {
    std::vector<std::string>* out =
        axis == 0 ? &names.groups : axis == 1 ? &names.queries
                                              : &names.locations;
    for (size_t i = 0; i < axis_sizes_[axis]; ++i) {
      uint32_t len = LoadU32(p);
      p += 4;
      out->emplace_back(reinterpret_cast<const char*>(p), len);
      p += len;
    }
  }
  return names;
}

Result<UnfairnessCube> MappedCube::Materialize() const {
  std::vector<int32_t> axes[3];
  for (size_t axis = 0; axis < 3; ++axis) {
    axes[axis].resize(axis_sizes_[axis]);
  }
  size_t base = 0;
  for (size_t axis = 0; axis < 3; ++axis) {
    for (size_t i = 0; i < axis_sizes_[axis]; ++i) {
      axes[axis][i] = LoadI32(axis_ids_ + 4 * (base + i));
    }
    base += axis_sizes_[axis];
  }
  FAIRJOB_ASSIGN_OR_RETURN(UnfairnessCube cube,
                           UnfairnessCube::Make(axes[0], axes[1], axes[2]));
  size_t g_size = axis_sizes_[0];
  size_t l_size = axis_sizes_[2];
  size_t cells = num_cells();
  if (dense_) {
    // Walk the presence bitmap a word at a time, decoding only set bits: a
    // sparse-but-dense-layout file (the sharded writer always writes dense)
    // costs O(present) instead of O(cells), and absent pages of the mmap'd
    // value section are never touched.
    size_t num_words = (cells + 63) / 64;
    for (size_t w = 0; w < num_words; ++w) {
      uint64_t word = LoadU64(presence_ + 8 * w);
      while (word != 0) {
        size_t index = w * 64 + static_cast<size_t>(std::countr_zero(word));
        word &= word - 1;
        if (index >= cells) {
          return Status::InvalidArgument(
              "binary cube presence bitmap has bits beyond the cell count");
        }
        size_t g = index % g_size;
        size_t rest = index / g_size;
        cube.Set(g, rest / l_size, rest % l_size, LoadF64(cells_ + 8 * index));
      }
    }
  } else {
    const unsigned char* p = cells_;
    const unsigned char* end = cells_ + cells_bytes_;
    uint64_t prev = uint64_t(-1);
    for (uint64_t k = 0; k < present_; ++k) {
      uint64_t delta = 0;
      p = ParseVarint(p, end, &delta);
      if (p == nullptr || delta == 0 || end - p < 8) {
        return Status::InvalidArgument(
            "binary cube sparse cell stream truncated or malformed");
      }
      uint64_t index = prev + delta;
      prev = index;
      if (index >= cells) {
        return Status::InvalidArgument(
            "binary cube sparse cell index out of range");
      }
      size_t g = static_cast<size_t>(index) % g_size;
      size_t rest = static_cast<size_t>(index) / g_size;
      cube.Set(g, rest / l_size, rest % l_size, LoadF64(p));
      p += 8;
    }
    if (p != end) {
      return Status::InvalidArgument(
          "binary cube sparse cell stream has trailing bytes");
    }
  }
  return cube;
}

Result<UnfairnessCube> LoadCubeBinary(const std::string& path) {
  FAIRJOB_ASSIGN_OR_RETURN(MappedCube mapped, MappedCube::Open(path));
  return mapped.Materialize();
}

// ---------------------------------------------------------------------------
// BinaryCubeColumnWriter
// ---------------------------------------------------------------------------

class BinaryCubeColumnWriter::Impl {
 public:
  ~Impl() {
#if defined(FAIRJOB_CUBE_IO_POSIX)
    if (fd_ >= 0) ::close(fd_);
#endif
  }

  Status Init(const std::string& path, const CubeAxes& axes,
              const CubeNames* names) {
#if !defined(FAIRJOB_CUBE_IO_POSIX)
    (void)path;
    (void)axes;
    (void)names;
    return Status::Internal(
        "BinaryCubeColumnWriter requires POSIX file I/O on this platform; "
        "build the cube in memory and use SaveCubeBinary instead");
#else
    if (axes.groups.empty() || axes.queries.empty() ||
        axes.locations.empty()) {
      return Status::InvalidArgument(
          "binary cube writer needs non-empty axes");
    }
    if (names != nullptr &&
        (names->groups.size() != axes.groups.size() ||
         names->queries.size() != axes.queries.size() ||
         names->locations.size() != axes.locations.size())) {
      return Status::InvalidArgument(
          "cube names axis lengths do not match the axes");
    }
    path_ = path;
    g_size_ = axes.groups.size();
    q_size_ = axes.queries.size();
    l_size_ = axes.locations.size();
    cells_ = g_size_ * q_size_ * l_size_;
    presence_.assign((cells_ + 63) / 64, 0);

    // Header placeholder + axis/name tables + padding; cell values land at
    // values_offset_ via per-column pwrite, the bitmap after them.
    std::string prefix(kBinaryCubeHeaderBytes, '\0');
    AppendAxisIds(&prefix, axes.groups);
    AppendAxisIds(&prefix, axes.queries);
    AppendAxisIds(&prefix, axes.locations);
    AppendNames(&prefix, names != nullptr ? &names->groups : nullptr,
                g_size_);
    AppendNames(&prefix, names != nullptr ? &names->queries : nullptr,
                q_size_);
    AppendNames(&prefix, names != nullptr ? &names->locations : nullptr,
                l_size_);
    prefix.append(PadTo8(prefix.size()), '\0');
    values_offset_ = prefix.size();
    presence_offset_ = values_offset_ + 8 * cells_;
    file_bytes_ = presence_offset_ + 8 * presence_.size();

    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
    if (fd_ < 0) {
      return Status::IOError("cannot open '" + path + "' for writing");
    }
    FAIRJOB_RETURN_IF_ERROR(WriteAt(prefix.data(), prefix.size(), 0));
    // Unstreamed columns must read as value 0.0 / absent: extending the file
    // to full size makes every unwritten byte a zero.
    if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
      return Status::IOError("cannot size '" + path + "' to " +
                             std::to_string(file_bytes_) + " bytes");
    }
    return Status::OK();
#endif
  }

  Status Consume(size_t query_pos, size_t location_pos,
                 const std::optional<double>* values, size_t num_groups) {
#if !defined(FAIRJOB_CUBE_IO_POSIX)
    (void)query_pos;
    (void)location_pos;
    (void)values;
    (void)num_groups;
    return Status::Internal("BinaryCubeColumnWriter requires POSIX file I/O");
#else
    if (finished_) {
      return Status::FailedPrecondition(
          "binary cube writer already finished");
    }
    if (num_groups != g_size_ || query_pos >= q_size_ ||
        location_pos >= l_size_) {
      return Status::InvalidArgument(
          "streamed column does not match the writer's axes");
    }
    size_t base = (query_pos * l_size_ + location_pos) * g_size_;
    std::vector<unsigned char> buf(8 * g_size_);
    size_t present = 0;
    for (size_t g = 0; g < g_size_; ++g) {
      StoreF64(buf.data() + 8 * g, values[g].value_or(0.0));
      present += values[g].has_value() ? 1 : 0;
    }
    FAIRJOB_RETURN_IF_ERROR(
        WriteAt(buf.data(), buf.size(), values_offset_ + 8 * base));
    {
      std::lock_guard<std::mutex> lock(presence_mutex_);
      for (size_t g = 0; g < g_size_; ++g) {
        if (values[g].has_value()) {
          size_t index = base + g;
          presence_[index / 64] |= uint64_t{1} << (index % 64);
        }
      }
    }
    present_count_.fetch_add(present, std::memory_order_relaxed);
    ColumnsStreamed()->Add(1);
    return Status::OK();
#endif
  }

  Status Finish() {
#if !defined(FAIRJOB_CUBE_IO_POSIX)
    return Status::Internal("BinaryCubeColumnWriter requires POSIX file I/O");
#else
    if (finished_) {
      return Status::FailedPrecondition(
          "binary cube writer already finished");
    }
    finished_ = true;
    std::string bitmap(8 * presence_.size(), '\0');
    for (size_t w = 0; w < presence_.size(); ++w) {
      StoreU64(reinterpret_cast<unsigned char*>(bitmap.data()) + 8 * w,
               presence_[w]);
    }
    FAIRJOB_RETURN_IF_ERROR(
        WriteAt(bitmap.data(), bitmap.size(), presence_offset_));

    // One sequential read-back pass checksums the payload exactly as a
    // reader will see it (including ftruncate zeros for missing columns).
    uint32_t crc = 0;
    std::vector<unsigned char> chunk(1 << 20);
    size_t offset = kBinaryCubeHeaderBytes;
    while (offset < file_bytes_) {
      size_t want = std::min(chunk.size(), file_bytes_ - offset);
      ssize_t n = ::pread(fd_, chunk.data(), want,
                          static_cast<off_t>(offset));
      if (n <= 0) {
        return Status::IOError("short read while checksumming '" + path_ +
                               "'");
      }
      crc = Crc32Update(crc, chunk.data(), static_cast<size_t>(n));
      offset += static_cast<size_t>(n);
    }

    BinaryCubeHeader header;
    header.flags = 0;
    header.dims[0] = g_size_;
    header.dims[1] = q_size_;
    header.dims[2] = l_size_;
    header.present = present_count_.load(std::memory_order_relaxed);
    header.payload_bytes = file_bytes_ - kBinaryCubeHeaderBytes;
    header.payload_crc = crc;
    unsigned char header_bytes[kBinaryCubeHeaderBytes];
    SerializeHeader(header, header_bytes);
    FAIRJOB_RETURN_IF_ERROR(WriteAt(header_bytes, sizeof(header_bytes), 0));
    BinaryBytesWritten()->Add(file_bytes_);
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError("cannot close '" + path_ + "'");
    }
    return Status::OK();
#endif
  }

 private:
#if defined(FAIRJOB_CUBE_IO_POSIX)
  Status WriteAt(const void* data, size_t bytes, size_t offset) {
    const char* p = static_cast<const char*>(data);
    size_t done = 0;
    while (done < bytes) {
      ssize_t n = ::pwrite(fd_, p + done, bytes - done,
                           static_cast<off_t>(offset + done));
      if (n <= 0) {
        return Status::IOError("short write to '" + path_ + "'");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_ = -1;
#endif
  std::string path_;
  size_t g_size_ = 0;
  size_t q_size_ = 0;
  size_t l_size_ = 0;
  size_t cells_ = 0;
  size_t values_offset_ = 0;
  size_t presence_offset_ = 0;
  size_t file_bytes_ = 0;
  bool finished_ = false;
  std::mutex presence_mutex_;
  std::vector<uint64_t> presence_;
  std::atomic<uint64_t> present_count_{0};
};

BinaryCubeColumnWriter::BinaryCubeColumnWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

BinaryCubeColumnWriter::~BinaryCubeColumnWriter() = default;

Result<std::unique_ptr<BinaryCubeColumnWriter>> BinaryCubeColumnWriter::Create(
    const std::string& path, const CubeAxes& axes, const CubeNames* names) {
  auto impl = std::make_unique<Impl>();
  FAIRJOB_RETURN_IF_ERROR(impl->Init(path, axes, names));
  return std::unique_ptr<BinaryCubeColumnWriter>(
      new BinaryCubeColumnWriter(std::move(impl)));
}

Status BinaryCubeColumnWriter::Consume(size_t query_pos, size_t location_pos,
                                       const std::optional<double>* values,
                                       size_t num_groups) {
  return impl_->Consume(query_pos, location_pos, values, num_groups);
}

Status BinaryCubeColumnWriter::Finish() { return impl_->Finish(); }

}  // namespace fairjob
