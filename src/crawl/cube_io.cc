#include "crawl/cube_io.h"

#include <cstdlib>

#include "common/string_util.h"
#include "crawl/csv.h"

namespace fairjob {
namespace {

const char* DimensionTag(Dimension d) { return DimensionName(d); }

Result<Dimension> DimensionFromTag(const std::string& tag) {
  if (tag == "group") return Dimension::kGroup;
  if (tag == "query") return Dimension::kQuery;
  if (tag == "location") return Dimension::kLocation;
  return Status::InvalidArgument("unknown cube axis tag '" + tag + "'");
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric field '" + s + "'");
  }
  return v;
}

Result<long> ParseLong(const std::string& s) {
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer field '" + s + "'");
  }
  return v;
}

}  // namespace

std::vector<std::vector<std::string>> CubeToCsvRows(const UnfairnessCube& cube,
                                                    AxisNamer namer,
                                                    const void* namer_context) {
  std::vector<std::vector<std::string>> rows;
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    for (size_t pos = 0; pos < cube.axis_size(d); ++pos) {
      int32_t id = cube.axis_id(d, pos);
      std::string name =
          namer != nullptr ? namer(d, id, namer_context) : std::string();
      rows.push_back({"axis", DimensionTag(d), std::to_string(id),
                      std::move(name)});
    }
  }
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < cube.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < cube.axis_size(Dimension::kLocation); ++l) {
        std::optional<double> v = cube.Get(g, q, l);
        if (v.has_value()) {
          rows.push_back({"cell", std::to_string(g), std::to_string(q),
                          std::to_string(l), FormatDouble(*v, 17)});
        }
      }
    }
  }
  return rows;
}

Result<UnfairnessCube> CubeFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<int32_t> axes[3];
  // First pass: axes (must precede cells to size the cube).
  for (const auto& row : rows) {
    if (row.empty()) continue;
    if (row[0] == "axis") {
      if (row.size() != 4) {
        return Status::InvalidArgument("axis row needs 4 fields");
      }
      FAIRJOB_ASSIGN_OR_RETURN(Dimension d, DimensionFromTag(row[1]));
      FAIRJOB_ASSIGN_OR_RETURN(long id, ParseLong(row[2]));
      axes[static_cast<size_t>(d)].push_back(static_cast<int32_t>(id));
    } else if (row[0] != "cell") {
      return Status::InvalidArgument("unknown cube CSV row kind '" + row[0] +
                                     "'");
    }
  }
  FAIRJOB_ASSIGN_OR_RETURN(UnfairnessCube cube,
                           UnfairnessCube::Make(axes[0], axes[1], axes[2]));

  for (const auto& row : rows) {
    if (row.empty() || row[0] != "cell") continue;
    if (row.size() != 5) {
      return Status::InvalidArgument("cell row needs 5 fields");
    }
    FAIRJOB_ASSIGN_OR_RETURN(long g, ParseLong(row[1]));
    FAIRJOB_ASSIGN_OR_RETURN(long q, ParseLong(row[2]));
    FAIRJOB_ASSIGN_OR_RETURN(long l, ParseLong(row[3]));
    FAIRJOB_ASSIGN_OR_RETURN(double v, ParseDouble(row[4]));
    if (g < 0 || static_cast<size_t>(g) >= cube.axis_size(Dimension::kGroup) ||
        q < 0 || static_cast<size_t>(q) >= cube.axis_size(Dimension::kQuery) ||
        l < 0 ||
        static_cast<size_t>(l) >= cube.axis_size(Dimension::kLocation)) {
      return Status::InvalidArgument("cell position out of range");
    }
    cube.Set(static_cast<size_t>(g), static_cast<size_t>(q),
             static_cast<size_t>(l), v);
  }
  return cube;
}

Result<CubeNames> CubeNamesFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  CubeNames names;
  for (const auto& row : rows) {
    if (row.empty() || row[0] != "axis") continue;
    if (row.size() != 4) {
      return Status::InvalidArgument("axis row needs 4 fields");
    }
    FAIRJOB_ASSIGN_OR_RETURN(Dimension d, DimensionFromTag(row[1]));
    switch (d) {
      case Dimension::kGroup:
        names.groups.push_back(row[3]);
        break;
      case Dimension::kQuery:
        names.queries.push_back(row[3]);
        break;
      case Dimension::kLocation:
        names.locations.push_back(row[3]);
        break;
    }
  }
  return names;
}

Status SaveCube(const std::string& path, const UnfairnessCube& cube,
                AxisNamer namer, const void* namer_context) {
  return WriteCsvFile(path, CubeToCsvRows(cube, namer, namer_context));
}

Result<UnfairnessCube> LoadCube(const std::string& path) {
  FAIRJOB_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  return CubeFromCsvRows(rows);
}

}  // namespace fairjob
