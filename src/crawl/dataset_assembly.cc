#include "crawl/dataset_assembly.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include <set>

namespace fairjob {

Result<MarketplaceAssembly> AssembleMarketplace(
    const AttributeSchema& schema, const std::vector<CrawlRecord>& records,
    const std::unordered_map<std::string, Demographics>&
        demographics_by_worker) {
  MarketplaceAssembly out{MarketplaceDataset(schema), 0};
  MarketplaceDataset& ds = out.dataset;

  // Register every labeled worker appearing in the crawl.
  std::unordered_map<std::string, WorkerId> worker_ids;
  for (const CrawlRecord& r : records) {
    if (worker_ids.count(r.worker_name) > 0) continue;
    auto demo = demographics_by_worker.find(r.worker_name);
    if (demo == demographics_by_worker.end()) continue;  // dropped below
    FAIRJOB_ASSIGN_OR_RETURN(WorkerId id,
                             ds.AddWorker(r.worker_name, demo->second));
    worker_ids.emplace(r.worker_name, id);
  }

  // Group records per (job, city), keeping rank order. std::map gives a
  // deterministic query/location numbering from identical crawls.
  std::map<std::pair<std::string, std::string>, std::vector<const CrawlRecord*>>
      per_query;
  for (const CrawlRecord& r : records) {
    per_query[{r.job, r.city}].push_back(&r);
  }

  for (auto& [key, group] : per_query) {
    std::stable_sort(group.begin(), group.end(),
                     [](const CrawlRecord* a, const CrawlRecord* b) {
                       return a->rank < b->rank;
                     });
    MarketRanking ranking;
    ranking.workers.reserve(group.size());
    for (const CrawlRecord* r : group) {
      auto it = worker_ids.find(r->worker_name);
      if (it == worker_ids.end()) {
        ++out.dropped_records;
        continue;
      }
      ranking.workers.push_back(it->second);
    }
    if (ranking.workers.empty()) continue;
    QueryId q = ds.queries().GetOrAdd(key.first);
    LocationId l = ds.locations().GetOrAdd(key.second);
    FAIRJOB_RETURN_IF_ERROR(ds.SetRanking(q, l, std::move(ranking)));
  }
  return out;
}

Result<SearchAssembly> AssembleSearch(
    const AttributeSchema& schema, const std::vector<SearchRunRecord>& runs,
    const std::unordered_map<std::string, Demographics>&
        demographics_by_user) {
  SearchAssembly out{SearchDataset(schema), Vocabulary(), 0};
  SearchDataset& ds = out.dataset;

  std::unordered_map<std::string, UserId> user_ids;
  for (const SearchRunRecord& run : runs) {
    auto demo = demographics_by_user.find(run.user);
    if (demo == demographics_by_user.end()) {
      ++out.dropped_runs;
      continue;
    }
    UserId uid;
    auto it = user_ids.find(run.user);
    if (it == user_ids.end()) {
      FAIRJOB_ASSIGN_OR_RETURN(uid, ds.AddUser(run.user, demo->second));
      user_ids.emplace(run.user, uid);
    } else {
      uid = it->second;
    }

    SearchObservation obs;
    obs.user = uid;
    obs.results.reserve(run.results.size());
    for (const std::string& doc : run.results) {
      obs.results.push_back(out.documents.GetOrAdd(doc));
    }
    QueryId q = ds.queries().GetOrAdd(run.query);
    LocationId l = ds.locations().GetOrAdd(run.location);
    FAIRJOB_RETURN_IF_ERROR(ds.AddObservation(q, l, std::move(obs)));
  }
  return out;
}


Result<WorkerTable> WorkerTableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty() || rows[0].size() < 2 ||
      (rows[0][0] != "worker" && rows[0][0] != "user")) {
    return Status::InvalidArgument(
        "worker CSV needs a 'worker,<attribute>,...' (or user,...) header");
  }
  const std::vector<std::string>& header = rows[0];
  size_t num_attrs = header.size() - 1;

  // First pass: collect each attribute's value domain (sorted, distinct).
  std::vector<std::set<std::string>> domains(num_attrs);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::InvalidArgument("worker CSV row " + std::to_string(r) +
                                     " has " + std::to_string(rows[r].size()) +
                                     " fields, expected " +
                                     std::to_string(header.size()));
    }
    for (size_t a = 0; a < num_attrs; ++a) {
      if (rows[r][a + 1].empty()) {
        return Status::InvalidArgument("empty attribute value in row " +
                                       std::to_string(r));
      }
      domains[a].insert(rows[r][a + 1]);
    }
  }
  if (rows.size() < 2) {
    return Status::InvalidArgument("worker CSV has no data rows");
  }

  WorkerTable table;
  for (size_t a = 0; a < num_attrs; ++a) {
    std::vector<std::string> values(domains[a].begin(), domains[a].end());
    Result<AttributeId> added =
        table.schema.AddAttribute(header[a + 1], std::move(values));
    if (!added.ok()) return added.status();
  }

  for (size_t r = 1; r < rows.size(); ++r) {
    Demographics d(num_attrs, 0);
    for (size_t a = 0; a < num_attrs; ++a) {
      FAIRJOB_ASSIGN_OR_RETURN(
          d[a],
          table.schema.FindValue(static_cast<AttributeId>(a), rows[r][a + 1]));
    }
    if (!table.demographics.emplace(rows[r][0], std::move(d)).second) {
      return Status::InvalidArgument("duplicate worker '" + rows[r][0] +
                                     "' in worker CSV");
    }
  }
  return table;
}

std::vector<CrawlRecord> DatasetToCrawlRecords(const MarketplaceDataset& data) {
  std::vector<CrawlRecord> records;
  for (const QueryLocation& ql : data.RankedPairs()) {
    const MarketRanking* ranking = data.GetRanking(ql.query, ql.location);
    for (size_t i = 0; i < ranking->workers.size(); ++i) {
      records.push_back(CrawlRecord{data.queries().NameOf(ql.query),
                                    data.locations().NameOf(ql.location),
                                    i + 1,
                                    data.workers().NameOf(ranking->workers[i])});
    }
  }
  return records;
}

Result<std::vector<std::vector<std::string>>> SearchRunRecordsToCsvRows(
    const std::vector<SearchRunRecord>& runs) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"user", "query", "location", "results"});
  for (const SearchRunRecord& run : runs) {
    if (run.results.empty()) {
      return Status::InvalidArgument("run for user '" + run.user +
                                     "' has no results");
    }
    for (const std::string& doc : run.results) {
      if (doc.find('|') != std::string::npos) {
        return Status::InvalidArgument("document key '" + doc +
                                       "' contains the '|' separator");
      }
    }
    rows.push_back({run.user, run.query, run.location,
                    Join(run.results, "|")});
  }
  return rows;
}

Result<std::vector<SearchRunRecord>> SearchRunRecordsFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty() || rows[0].size() != 4 || rows[0][0] != "user") {
    return Status::InvalidArgument(
        "search-run CSV needs a 'user,query,location,results' header");
  }
  std::vector<SearchRunRecord> runs;
  runs.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 4) {
      return Status::InvalidArgument("search-run CSV row " +
                                     std::to_string(r) + " has " +
                                     std::to_string(rows[r].size()) +
                                     " fields, expected 4");
    }
    SearchRunRecord run;
    run.user = rows[r][0];
    run.query = rows[r][1];
    run.location = rows[r][2];
    run.results = Split(rows[r][3], '|');
    if (run.results.size() == 1 && run.results[0].empty()) {
      return Status::InvalidArgument("search-run CSV row " +
                                     std::to_string(r) +
                                     " has an empty result list");
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<std::vector<std::string>> WorkerTableToCsvRows(
    const MarketplaceDataset& data) {
  const AttributeSchema& schema = data.schema();
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"worker"};
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    header.push_back(schema.attribute_name(static_cast<AttributeId>(a)));
  }
  rows.push_back(std::move(header));
  for (size_t w = 0; w < data.num_workers(); ++w) {
    std::vector<std::string> row = {
        data.workers().NameOf(static_cast<WorkerId>(w))};
    const Demographics& d =
        data.worker_demographics(static_cast<WorkerId>(w));
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      row.push_back(schema.value_name(static_cast<AttributeId>(a), d[a]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<SearchRunRecord>> DatasetToSearchRunRecords(
    const SearchDataset& data, const Vocabulary& documents) {
  std::vector<SearchRunRecord> runs;
  for (QueryId q = 0; q < static_cast<QueryId>(data.queries().size()); ++q) {
    for (LocationId l = 0;
         l < static_cast<LocationId>(data.locations().size()); ++l) {
      const std::vector<SearchObservation>* obs = data.GetObservations(q, l);
      if (obs == nullptr) continue;
      for (const SearchObservation& o : *obs) {
        SearchRunRecord run;
        run.user = data.users().NameOf(o.user);
        run.query = data.queries().NameOf(q);
        run.location = data.locations().NameOf(l);
        for (int32_t doc : o.results) {
          if (doc < 0 || static_cast<size_t>(doc) >= documents.size()) {
            return Status::InvalidArgument(
                "document id " + std::to_string(doc) +
                " missing from the provided vocabulary");
          }
          run.results.push_back(documents.NameOf(doc));
        }
        runs.push_back(std::move(run));
      }
    }
  }
  return runs;
}

}  // namespace fairjob