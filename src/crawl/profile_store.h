#ifndef FAIRJOB_CRAWL_PROFILE_STORE_H_
#define FAIRJOB_CRAWL_PROFILE_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fairjob {

// A worker profile as scraped from the marketplace: the raw material the
// paper's pipeline collects before demographics are inferred from profile
// pictures (Figure 6: "rank of each tasker, their badges, reviews, profile
// pictures, and hourly rates").
struct RawProfile {
  std::string worker_name;
  std::string picture_ref;  // opaque handle to the profile picture
  double hourly_rate = 0.0;
  int num_reviews = 0;
  std::string badges;  // semicolon-separated badge names
};

// Deduplicated storage of crawled profiles with CSV persistence.
class ProfileStore {
 public:
  // Inserts or refreshes a profile keyed by worker name. Errors:
  // InvalidArgument on an empty worker name.
  Status Upsert(RawProfile profile);

  // Errors: NotFound.
  Result<RawProfile> Get(const std::string& worker_name) const;

  bool Contains(const std::string& worker_name) const {
    return by_name_.count(worker_name) > 0;
  }
  size_t size() const { return profiles_.size(); }

  // Profiles in insertion order.
  const std::vector<RawProfile>& profiles() const { return profiles_; }

  // CSV round trip (header row included).
  std::vector<std::vector<std::string>> ToCsvRows() const;
  static Result<ProfileStore> FromCsvRows(
      const std::vector<std::vector<std::string>>& rows);

 private:
  std::vector<RawProfile> profiles_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_PROFILE_STORE_H_
