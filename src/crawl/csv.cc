#include "crawl/csv.h"

#include <fstream>
#include <sstream>

namespace fairjob {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string* out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool row_has_content = false;

  size_t i = 0;
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted) {
          return Status::InvalidArgument(
              "unexpected quote inside unquoted field at offset " +
              std::to_string(i));
        }
        in_quotes = true;
        field_was_quoted = true;
        row_has_content = true;
        ++i;
        break;
      case ',':
        end_field();
        row_has_content = true;
        ++i;
        break;
      case '\r':
        // Swallow; the following '\n' (if any) terminates the row.
        ++i;
        if ((i >= text.size() || text[i] != '\n') && row_has_content) end_row();
        break;
      case '\n':
        // Blank lines are skipped rather than parsed as a one-empty-field row.
        if (row_has_content) end_row();
        ++i;
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field at end of input");
  }
  if (row_has_content || !row.empty()) end_row();
  return rows;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  std::string text = WriteCsv(rows);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace fairjob
