#include "crawl/crawler.h"

#include <cstdlib>
#include <unordered_set>

namespace fairjob {

Crawler::Crawler(MarketplaceSite* site, VirtualClock* clock,
                 CrawlerConfig config)
    : site_(site), clock_(clock), config_(config) {}

template <typename RetType, typename Fetch>
Result<RetType> Crawler::FetchWithRetry(Fetch fetch, CrawlReport* report) {
  int64_t backoff = config_.retry_backoff_s;
  for (size_t attempt = 0;; ++attempt) {
    // Politeness: keep at least the configured interval between requests.
    if (last_request_at_s_ >= 0) {
      clock_->AdvanceTo(last_request_at_s_ + config_.min_request_interval_s);
    }
    last_request_at_s_ = clock_->NowSeconds();
    if (report != nullptr) ++report->requests_issued;

    Result<RetType> result = fetch();
    if (result.ok()) return result;
    if (result.status().code() != StatusCode::kIOError ||
        attempt >= config_.max_retries) {
      return result;  // permanent failure or retries exhausted
    }
    if (report != nullptr) ++report->retries;
    clock_->AdvanceSeconds(backoff);
    backoff *= 2;
  }
}

Status Crawler::CrawlQuery(const std::string& job, const std::string& city,
                           CrawlReport* report) {
  size_t rank = 0;
  for (size_t page = 0;; ++page) {
    Result<ResultPage> fetched = FetchWithRetry<ResultPage>(
        [&] { return site_->FetchPage(job, city, page, config_.page_size); },
        report);
    if (!fetched.ok()) {
      ++report->failed_queries;
      return fetched.status();
    }
    for (const std::string& worker : fetched->worker_names) {
      if (rank >= config_.max_results_per_query) break;
      ++rank;
      report->records.push_back(CrawlRecord{job, city, rank, worker});
    }
    if (!fetched->has_more || rank >= config_.max_results_per_query) break;
  }
  return Status::OK();
}

Result<CrawlReport> Crawler::CrawlAll() {
  CrawlReport report;
  for (const std::string& city : site_->Cities()) {
    for (const std::string& job : site_->JobsIn(city)) {
      // A permanently failing query is recorded but does not abort the crawl.
      Status s = CrawlQuery(job, city, &report);
      (void)s;
    }
  }
  report.finished_at_s = clock_->NowSeconds();
  return report;
}

Result<CrawlReport> Crawler::CrawlQueries(
    const std::vector<std::pair<std::string, std::string>>& job_city_pairs) {
  CrawlReport report;
  for (const auto& [job, city] : job_city_pairs) {
    Status s = CrawlQuery(job, city, &report);
    (void)s;  // counted in report.failed_queries
  }
  report.finished_at_s = clock_->NowSeconds();
  return report;
}

Status Crawler::CollectProfiles(const std::vector<CrawlRecord>& records,
                                ProfileStore* store, CrawlReport* report) {
  std::unordered_set<std::string> wanted;
  for (const CrawlRecord& r : records) wanted.insert(r.worker_name);
  for (const std::string& worker : wanted) {
    if (store->Contains(worker)) continue;
    Result<RawProfile> profile = FetchWithRetry<RawProfile>(
        [&] { return site_->FetchProfile(worker); }, report);
    if (!profile.ok()) return profile.status();
    FAIRJOB_RETURN_IF_ERROR(store->Upsert(std::move(*profile)));
  }
  if (report != nullptr) report->finished_at_s = clock_->NowSeconds();
  return Status::OK();
}

std::vector<std::vector<std::string>> CrawlRecordsToCsvRows(
    const std::vector<CrawlRecord>& records) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"job", "city", "rank", "worker"});
  for (const CrawlRecord& r : records) {
    rows.push_back({r.job, r.city, std::to_string(r.rank), r.worker_name});
  }
  return rows;
}

Result<std::vector<CrawlRecord>> CrawlRecordsFromCsvRows(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty() || rows[0].size() != 4 || rows[0][0] != "job") {
    return Status::InvalidArgument("missing or malformed crawl CSV header");
  }
  std::vector<CrawlRecord> records;
  records.reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 4) {
      return Status::InvalidArgument("crawl CSV row " + std::to_string(i) +
                                     " has " + std::to_string(row.size()) +
                                     " fields, expected 4");
    }
    char* end = nullptr;
    long rank = std::strtol(row[2].c_str(), &end, 10);
    if (end == row[2].c_str() || rank <= 0) {
      return Status::InvalidArgument("bad rank in crawl CSV row " +
                                     std::to_string(i));
    }
    records.push_back(
        CrawlRecord{row[0], row[1], static_cast<size_t>(rank), row[3]});
  }
  return records;
}

}  // namespace fairjob
