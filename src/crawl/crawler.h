#ifndef FAIRJOB_CRAWL_CRAWLER_H_
#define FAIRJOB_CRAWL_CRAWLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "crawl/profile_store.h"

namespace fairjob {

// One page of marketplace search results.
struct ResultPage {
  std::vector<std::string> worker_names;  // best-first within the page
  bool has_more = false;
};

// The remote marketplace as seen by the crawler. The production-equivalent
// implementation would wrap HTTP scraping; this repository provides a
// calibrated simulator (market::SimulatedMarketplace) behind the same
// interface, which is what replaces the paper's live 2019 TaskRabbit crawl.
//
// FetchPage / FetchProfile may fail *transiently* with StatusCode::kIOError
// (rate limiting, flaky transport); the crawler retries those with backoff.
// Any other error code is treated as permanent.
class MarketplaceSite {
 public:
  virtual ~MarketplaceSite() = default;

  virtual std::vector<std::string> Cities() const = 0;
  virtual std::vector<std::string> JobsIn(const std::string& city) const = 0;
  virtual Result<ResultPage> FetchPage(const std::string& job,
                                       const std::string& city, size_t page,
                                       size_t page_size) = 0;
  virtual Result<RawProfile> FetchProfile(const std::string& worker_name) = 0;
};

// One (job, city, rank, worker) observation; ranks are 1-based.
struct CrawlRecord {
  std::string job;
  std::string city;
  size_t rank = 0;
  std::string worker_name;
};

struct CrawlerConfig {
  size_t page_size = 10;
  // The paper's crawl capped results at 50 taskers per query.
  size_t max_results_per_query = 50;
  // Politeness delay between requests, in (virtual) seconds.
  int64_t min_request_interval_s = 1;
  // Transient-failure retry policy: exponential backoff starting at
  // `retry_backoff_s`, at most `max_retries` attempts per request.
  size_t max_retries = 5;
  int64_t retry_backoff_s = 2;
};

struct CrawlReport {
  std::vector<CrawlRecord> records;
  size_t requests_issued = 0;
  size_t retries = 0;
  size_t failed_queries = 0;  // queries abandoned after exhausting retries
  int64_t finished_at_s = 0;  // virtual-clock timestamp at completion
};

// Scrapes a MarketplaceSite deterministically over a virtual clock,
// honouring the page-size / result-cap / rate-limit / retry policy.
class Crawler {
 public:
  // `site` and `clock` are borrowed and must outlive the crawler.
  Crawler(MarketplaceSite* site, VirtualClock* clock, CrawlerConfig config);

  // Every job offered in every city (the paper's 5,361-query crawl shape).
  Result<CrawlReport> CrawlAll();

  // A selective re-crawl (monitoring refreshes): only the given (job, city)
  // pairs, in order. Permanently failing queries are counted in the report
  // and skipped, as in CrawlAll.
  Result<CrawlReport> CrawlQueries(
      const std::vector<std::pair<std::string, std::string>>& job_city_pairs);

  // A single (job, city) query; appends to `report`.
  Status CrawlQuery(const std::string& job, const std::string& city,
                    CrawlReport* report);

  // Fetches the profile of every distinct worker in `records` into `store`
  // (skipping those already present).
  Status CollectProfiles(const std::vector<CrawlRecord>& records,
                         ProfileStore* store, CrawlReport* report);

 private:
  // Runs `fetch` with rate limiting + retries. `RetType` is ResultPage or
  // RawProfile.
  template <typename RetType, typename Fetch>
  Result<RetType> FetchWithRetry(Fetch fetch, CrawlReport* report);

  MarketplaceSite* site_;
  VirtualClock* clock_;
  CrawlerConfig config_;
  int64_t last_request_at_s_ = -1;
};

// CSV round trip for crawl records (header included).
std::vector<std::vector<std::string>> CrawlRecordsToCsvRows(
    const std::vector<CrawlRecord>& records);
Result<std::vector<CrawlRecord>> CrawlRecordsFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_CRAWLER_H_
