#ifndef FAIRJOB_CRAWL_DATASET_ASSEMBLY_H_
#define FAIRJOB_CRAWL_DATASET_ASSEMBLY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "crawl/crawler.h"

namespace fairjob {

// Final step of both experiment flows (Figures 6 and 9): raw observations +
// inferred demographics -> the datasets the F-Box consumes.

struct MarketplaceAssembly {
  MarketplaceDataset dataset;
  // Crawl records whose worker had no demographic label and were dropped.
  size_t dropped_records = 0;
};

// Builds a MarketplaceDataset from crawl records and per-worker
// demographics. Records are grouped by (job, city) and ordered by rank;
// rank gaps are tolerated (the order is what matters), duplicate
// (job, city, worker) entries are errors.
//
// Errors: InvalidArgument on duplicate workers within one query's results or
// invalid demographics.
Result<MarketplaceAssembly> AssembleMarketplace(
    const AttributeSchema& schema, const std::vector<CrawlRecord>& records,
    const std::unordered_map<std::string, Demographics>&
        demographics_by_worker);

// One search-engine run: a user executed a search-term formulation of a
// query at a location and observed ranked result documents.
struct SearchRunRecord {
  std::string user;
  std::string query;     // canonical query the formulation expands
  std::string location;
  std::vector<std::string> results;  // document keys, best first
};

struct SearchAssembly {
  SearchDataset dataset;
  Vocabulary documents;  // document key <-> RankedList id mapping
  size_t dropped_runs = 0;  // runs from users without demographics
};

// Builds a SearchDataset (one observation per run, keyed by the canonical
// query) from study runs and per-user demographics.
//
// Errors: InvalidArgument on empty/duplicated result lists or invalid
// demographics.
Result<SearchAssembly> AssembleSearch(
    const AttributeSchema& schema, const std::vector<SearchRunRecord>& runs,
    const std::unordered_map<std::string, Demographics>& demographics_by_user);

// A fully data-driven worker table: the schema is inferred from the CSV
// header (`worker,<attribute>,<attribute>,...`) and each attribute's value
// domain from the distinct values observed (sorted for deterministic ids).
// This is how the CLI ingests arbitrary platforms without code changes.
struct WorkerTable {
  AttributeSchema schema;
  std::unordered_map<std::string, Demographics> demographics;
};

// Errors: InvalidArgument on a missing/malformed header, duplicate workers,
// rows with the wrong arity, or empty attribute values.
Result<WorkerTable> WorkerTableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// The inverse direction: exports a dataset back to the crawl-record and
// worker-table CSV formats (closing the ingest round trip, e.g. for handing
// an audited dataset to the CLI or another tool).
std::vector<CrawlRecord> DatasetToCrawlRecords(const MarketplaceDataset& data);
std::vector<std::vector<std::string>> WorkerTableToCsvRows(
    const MarketplaceDataset& data);

// CSV round trip for search-engine study runs. Header
// `user,query,location,results`; the ranked result documents are joined
// with '|' (best first), so document keys must not contain '|'.
// Errors: InvalidArgument (malformed rows; empty result lists; '|' in a
// document key on export).
Result<std::vector<std::vector<std::string>>> SearchRunRecordsToCsvRows(
    const std::vector<SearchRunRecord>& runs);
Result<std::vector<SearchRunRecord>> SearchRunRecordsFromCsvRows(
    const std::vector<std::vector<std::string>>& rows);

// Exports an assembled search dataset back to run records (needs the
// document vocabulary produced by AssembleSearch to name the RankedList
// ids). Errors: InvalidArgument when a document id is outside `documents`.
Result<std::vector<SearchRunRecord>> DatasetToSearchRunRecords(
    const SearchDataset& data, const Vocabulary& documents);

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_DATASET_ASSEMBLY_H_
