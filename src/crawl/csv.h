#ifndef FAIRJOB_CRAWL_CSV_H_
#define FAIRJOB_CRAWL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fairjob {

// RFC-4180-style CSV handling for the crawl pipeline's raw record files:
// fields containing commas, quotes or newlines are quoted; quotes are
// doubled.

// Serializes rows into one CSV string.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

// Parses CSV text. Handles quoted fields with embedded separators/newlines
// and both \n and \r\n row endings; a trailing newline does not produce an
// empty row. Errors: InvalidArgument on malformed quoting.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

// File convenience wrappers. Errors: IOError.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace fairjob

#endif  // FAIRJOB_CRAWL_CSV_H_
