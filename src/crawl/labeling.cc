#include "crawl/labeling.h"

namespace fairjob {

Demographics SimulateAnnotation(const AttributeSchema& schema,
                                const Demographics& truth, double error_rate,
                                Rng* rng) {
  Demographics label = truth;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    size_t domain = schema.num_values(static_cast<AttributeId>(a));
    if (domain < 2) continue;  // no wrong value to pick
    if (rng->NextBernoulli(error_rate)) {
      // Uniform over the domain minus the true value.
      uint32_t wrong = rng->NextBelow(static_cast<uint32_t>(domain - 1));
      ValueId v = static_cast<ValueId>(wrong);
      if (v >= truth[a]) v += 1;
      label[a] = v;
    }
  }
  return label;
}

Result<Demographics> MajorityVote(const AttributeSchema& schema,
                                  const std::vector<Demographics>& labels) {
  if (labels.empty()) {
    return Status::InvalidArgument("majority vote needs at least one label");
  }
  for (const Demographics& l : labels) {
    if (!schema.IsValidDemographics(l)) {
      return Status::InvalidArgument("label does not match the schema");
    }
  }
  Demographics out(schema.num_attributes(), 0);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    std::vector<size_t> votes(schema.num_values(static_cast<AttributeId>(a)),
                              0);
    for (const Demographics& l : labels) ++votes[static_cast<size_t>(l[a])];
    size_t best = 0;
    for (size_t v = 1; v < votes.size(); ++v) {
      if (votes[v] > votes[best]) best = v;  // ties keep the smaller ValueId
    }
    out[a] = static_cast<ValueId>(best);
  }
  return out;
}

Result<LabelingOutcome> RunLabeling(const AttributeSchema& schema,
                                    const std::vector<Demographics>& truths,
                                    const LabelingConfig& config, Rng* rng) {
  if (config.annotators_per_item == 0) {
    return Status::InvalidArgument("need at least one annotator per item");
  }
  if (config.error_rate < 0.0 || config.error_rate > 1.0) {
    return Status::InvalidArgument("error_rate must lie in [0, 1]");
  }
  LabelingOutcome outcome;
  outcome.labels.reserve(truths.size());
  size_t correct_attrs = 0;
  size_t total_attrs = 0;
  for (const Demographics& truth : truths) {
    if (!schema.IsValidDemographics(truth)) {
      return Status::InvalidArgument("ground-truth demographics invalid");
    }
    std::vector<Demographics> annotations;
    annotations.reserve(config.annotators_per_item);
    for (size_t i = 0; i < config.annotators_per_item; ++i) {
      annotations.push_back(
          SimulateAnnotation(schema, truth, config.error_rate, rng));
    }
    FAIRJOB_ASSIGN_OR_RETURN(Demographics voted,
                             MajorityVote(schema, annotations));
    bool all_correct = true;
    for (size_t a = 0; a < truth.size(); ++a) {
      ++total_attrs;
      if (voted[a] == truth[a]) {
        ++correct_attrs;
      } else {
        all_correct = false;
      }
    }
    if (all_correct) ++outcome.items_fully_correct;
    outcome.labels.push_back(std::move(voted));
  }
  outcome.attribute_accuracy =
      total_attrs == 0
          ? 1.0
          : static_cast<double>(correct_attrs) / static_cast<double>(total_attrs);
  return outcome;
}

}  // namespace fairjob
