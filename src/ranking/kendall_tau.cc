#include "ranking/kendall_tau.h"

#include <algorithm>
#include <unordered_map>

#include "ranking/list_internal.h"

namespace fairjob {
namespace {

using ranking_internal::RankPositions;

uint64_t MergeCount(std::vector<int32_t>& v, std::vector<int32_t>& scratch,
                    size_t lo, size_t hi) {
  if (hi - lo <= 1) return 0;
  size_t mid = lo + (hi - lo) / 2;
  uint64_t inv = MergeCount(v, scratch, lo, mid) + MergeCount(v, scratch, mid, hi);
  size_t i = lo;
  size_t j = mid;
  size_t k = lo;
  while (i < mid && j < hi) {
    if (v[i] <= v[j]) {
      scratch[k++] = v[i++];
    } else {
      inv += mid - i;
      scratch[k++] = v[j++];
    }
  }
  while (i < mid) scratch[k++] = v[i++];
  while (j < hi) scratch[k++] = v[j++];
  std::copy(scratch.begin() + static_cast<long>(lo),
            scratch.begin() + static_cast<long>(hi),
            v.begin() + static_cast<long>(lo));
  return inv;
}

}  // namespace

uint64_t CountInversionsInPlace(std::vector<int32_t>& v,
                                std::vector<int32_t>& scratch) {
  if (scratch.size() < v.size()) scratch.resize(v.size());
  return MergeCount(v, scratch, 0, v.size());
}

uint64_t CountInversions(std::vector<int32_t> v) {
  std::vector<int32_t> scratch(v.size());
  return MergeCount(v, scratch, 0, v.size());
}

Result<double> KendallTauDistance(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Kendall-Tau distance needs non-empty lists");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "full Kendall-Tau needs lists over the same item set; use "
        "KendallTauTopK for top-k lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, RankPositions(a, 0));
  // Rewrite b in terms of a's positions; discordant pairs become inversions.
  // a's positions are distinct, so a duplicate in b surfaces as a repeated
  // mapped position — a flat byte vector validates b without a second hash
  // set per call.
  std::vector<int32_t> mapped;
  mapped.reserve(b.size());
  std::vector<uint8_t> seen_pos(a.size(), 0);
  for (int32_t item : b) {
    auto it = pos_a.find(item);
    if (it == pos_a.end()) {
      return Status::InvalidArgument("lists rank different item sets (item " +
                                     std::to_string(item) + " missing)");
    }
    if (seen_pos[it->second] != 0) {
      return Status::InvalidArgument("ranked list contains duplicate item id " +
                                     std::to_string(item));
    }
    seen_pos[it->second] = 1;
    mapped.push_back(static_cast<int32_t>(it->second));
  }
  size_t n = a.size();
  if (n == 1) return 0.0;
  uint64_t inv = CountInversions(std::move(mapped));
  double max_pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(inv) / max_pairs;
}

Result<double> KendallTauCorrelation(const RankedList& a, const RankedList& b) {
  FAIRJOB_ASSIGN_OR_RETURN(double d, KendallTauDistance(a, b));
  return 1.0 - 2.0 * d;
}

Result<double> KendallTauTopK(const RankedList& a, const RankedList& b,
                              double p) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Kendall-Tau top-k needs non-empty lists");
  }
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("penalty p must lie in [0, 1]");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, RankPositions(a, 0));
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_b, RankPositions(b, 0));

  // Partition the union: Z (both), S (only a), T (only b).
  size_t z = 0;
  for (int32_t item : a) {
    if (pos_b.count(item) > 0) ++z;
  }
  size_t only_b = b.size() - z;

  double penalty = 0.0;

  // Case 1 + case 2 contributions, via explicit pair scan over the union.
  // This per-pair path rebuilds the position maps on every call; when many
  // lists of one cell are compared pairwise, ListDistanceBatch
  // (ranking/list_batch.h) interns each list once and runs the same pair
  // scan over flat arrays — it supersedes this function on that workload
  // and is kept bitwise-identical to it (the penalty accumulation below is
  // the contract both sides implement).
  std::vector<int32_t> union_items;
  union_items.reserve(a.size() + only_b);
  union_items.insert(union_items.end(), a.begin(), a.end());
  for (int32_t item : b) {
    if (pos_a.count(item) == 0) union_items.push_back(item);
  }

  // Hoist per-item membership flags and ranks out of the O(u²) pair scan:
  // one hash lookup per union item here replaces four count() plus up to
  // four at()/find() probes per *pair* below. Items absent from a top-k
  // list are implicitly ranked below everything.
  const size_t u = union_items.size();
  std::vector<uint8_t> in_a(u), in_b(u);
  std::vector<size_t> rank_a(u), rank_b(u);
  for (size_t x = 0; x < u; ++x) {
    auto it_a = pos_a.find(union_items[x]);
    in_a[x] = it_a != pos_a.end() ? 1 : 0;
    rank_a[x] = in_a[x] ? it_a->second : a.size() + 1000000;
    auto it_b = pos_b.find(union_items[x]);
    in_b[x] = it_b != pos_b.end() ? 1 : 0;
    rank_b[x] = in_b[x] ? it_b->second : b.size() + 1000000;
  }

  for (size_t x = 0; x < u; ++x) {
    for (size_t y = x + 1; y < u; ++y) {
      bool i_in_a = in_a[x] != 0;
      bool j_in_a = in_a[y] != 0;
      bool i_in_b = in_b[x] != 0;
      bool j_in_b = in_b[y] != 0;
      int lists_with_both = static_cast<int>(i_in_a && j_in_a) +
                            static_cast<int>(i_in_b && j_in_b);
      if (lists_with_both == 2) {
        // Case 1: both lists rank both items.
        bool agree = (rank_a[x] < rank_a[y]) == (rank_b[x] < rank_b[y]);
        if (!agree) penalty += 1.0;
      } else if ((i_in_a != i_in_b) && (j_in_a != j_in_b) &&
                 (i_in_a != j_in_a)) {
        // Case 3: i appears only in one list, j only in the other.
        penalty += 1.0;
      } else if (lists_with_both == 1) {
        bool both_absent_somewhere =
            (!i_in_a && !j_in_a) || (!i_in_b && !j_in_b);
        if (both_absent_somewhere) {
          // Case 4: both items confined to the same single list.
          penalty += p;
        } else {
          // Case 2: one list ranks both, the other ranks exactly one. The
          // absent item is implicitly below the present one there.
          if ((rank_a[x] < rank_a[y]) != (rank_b[x] < rank_b[y])) {
            penalty += 1.0;
          }
        }
      }
    }
  }

  // Normalize by the value attained by two fully disjoint lists of these
  // sizes, the maximum over list pairs (see header).
  auto pairs_within = [](size_t n) {
    return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  };
  double max_penalty =
      static_cast<double>(a.size()) * static_cast<double>(b.size()) +
      p * (pairs_within(a.size()) + pairs_within(b.size()));
  if (max_penalty <= 0.0) return 0.0;  // both lists are single identical item
  double d = penalty / max_penalty;
  return std::min(1.0, std::max(0.0, d));
}

}  // namespace fairjob
