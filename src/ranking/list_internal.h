#ifndef FAIRJOB_RANKING_LIST_INTERNAL_H_
#define FAIRJOB_RANKING_LIST_INTERNAL_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "ranking/kendall_tau.h"

namespace fairjob {
namespace ranking_internal {

// Rank lookup (item -> base + rank) with duplicate validation, shared by the
// per-pair kernels (kendall_tau.cc uses base 0, footrule.cc base 1 — the
// papers' positions are 1-based). The batched engine (list_batch.h) performs
// this validation once per list instead of once per pair.
inline Result<std::unordered_map<int32_t, size_t>> RankPositions(
    const RankedList& list, size_t base) {
  std::unordered_map<int32_t, size_t> pos;
  pos.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    if (!pos.emplace(list[i], base + i).second) {
      return Status::InvalidArgument("ranked list contains duplicate item id " +
                                     std::to_string(list[i]));
    }
  }
  return pos;
}

}  // namespace ranking_internal
}  // namespace fairjob

#endif  // FAIRJOB_RANKING_LIST_INTERNAL_H_
