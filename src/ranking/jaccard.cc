#include "ranking/jaccard.h"

#include <algorithm>
#include <unordered_set>

namespace fairjob {
namespace {

Result<std::unordered_set<int32_t>> SetOf(const RankedList& list) {
  std::unordered_set<int32_t> s;
  s.reserve(list.size());
  for (int32_t item : list) {
    if (!s.insert(item).second) {
      return Status::InvalidArgument("ranked list contains duplicate item id " +
                                     std::to_string(item));
    }
  }
  return s;
}

}  // namespace

Result<double> JaccardIndex(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Jaccard needs non-empty lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto sa, SetOf(a));
  FAIRJOB_ASSIGN_OR_RETURN(auto sb, SetOf(b));
  size_t inter = 0;
  for (int32_t item : sa) {
    if (sb.count(item) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

Result<double> JaccardDistance(const RankedList& a, const RankedList& b) {
  FAIRJOB_ASSIGN_OR_RETURN(double j, JaccardIndex(a, b));
  return 1.0 - j;
}

Result<double> OverlapAtK(const RankedList& a, const RankedList& b, size_t k) {
  if (k == 0) return Status::InvalidArgument("overlap depth k must be positive");
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("overlap needs non-empty lists");
  }
  RankedList ta(a.begin(), a.begin() + static_cast<long>(std::min(k, a.size())));
  RankedList tb(b.begin(), b.begin() + static_cast<long>(std::min(k, b.size())));
  FAIRJOB_ASSIGN_OR_RETURN(auto sa, SetOf(ta));
  FAIRJOB_ASSIGN_OR_RETURN(auto sb, SetOf(tb));
  size_t inter = 0;
  for (int32_t item : sa) {
    if (sb.count(item) > 0) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(k);
}

}  // namespace fairjob
