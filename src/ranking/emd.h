#ifndef FAIRJOB_RANKING_EMD_H_
#define FAIRJOB_RANKING_EMD_H_

#include <vector>

#include "common/status.h"
#include "ranking/histogram.h"

namespace fairjob {

// Earth Mover's Distance between two 1-D distributions over the same
// equally-spaced bins, with ground distance |i - j| / (B - 1) so the result
// lies in [0, 1] (mass concentrated at opposite ends has distance 1).
// Inputs are normalized internally; they only need non-negative entries with
// positive sums.
//
// Closed form for the 1-D case: the L1 distance between CDFs.
//
// Errors: InvalidArgument on size mismatch, empty input, negative entries or
// zero total mass.
Result<double> Emd1D(const std::vector<double>& p, const std::vector<double>& q);

// EMD between two histograms (normalizes both; see Emd1D). Histograms must
// agree on bin count and range and be non-empty.
Result<double> EmdBetweenHistograms(const Histogram& p, const Histogram& q);

// Exact EMD for an arbitrary non-negative ground-cost matrix, solved as a
// transportation problem with successive-shortest-path min-cost flow
// (the general formulation the paper cites via Pele & Werman). Returns
// min total cost / total mass. Supply and demand are normalized internally.
//
// cost[i][j] is the cost of moving one unit of mass from supply bin i to
// demand bin j. Complexity ~O(V^2 E) — intended for the small histograms
// used in fairness auditing, and as a cross-check oracle for Emd1D.
//
// Errors: InvalidArgument on dimension mismatches, negative entries or zero
// total mass on either side.
Result<double> EmdGeneral(const std::vector<double>& supply,
                          const std::vector<double>& demand,
                          const std::vector<std::vector<double>>& cost);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_EMD_H_
