#include "ranking/emd.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairjob {
namespace {

constexpr double kMassEps = 1e-12;

Status ValidateAndNormalize(const std::vector<double>& in,
                            std::vector<double>* out, const char* side) {
  if (in.empty()) {
    return Status::InvalidArgument(std::string(side) + " distribution is empty");
  }
  double total = 0.0;
  for (double v : in) {
    if (v < 0.0) {
      return Status::InvalidArgument(std::string(side) +
                                     " distribution has a negative entry");
    }
    total += v;
  }
  if (total <= kMassEps) {
    return Status::InvalidArgument(std::string(side) +
                                   " distribution has zero total mass");
  }
  out->resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) (*out)[i] = in[i] / total;
  return Status::OK();
}

}  // namespace

Result<double> Emd1D(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("EMD inputs must have the same bin count");
  }
  std::vector<double> pn;
  std::vector<double> qn;
  FAIRJOB_RETURN_IF_ERROR(ValidateAndNormalize(p, &pn, "first"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAndNormalize(q, &qn, "second"));
  size_t n = pn.size();
  if (n == 1) return 0.0;
  // EMD over the line = sum of |CDF_p - CDF_q| per unit step; each step is
  // 1/(n-1) of the normalized ground distance.
  double cum = 0.0;
  double emd = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    cum += pn[i] - qn[i];
    emd += std::fabs(cum);
  }
  return emd / static_cast<double>(n - 1);
}

Result<double> EmdBetweenHistograms(const Histogram& p, const Histogram& q) {
  if (p.num_bins() != q.num_bins() || p.lo() != q.lo() || p.hi() != q.hi()) {
    return Status::InvalidArgument("histograms have mismatched bin layout");
  }
  if (p.empty() || q.empty()) {
    return Status::InvalidArgument("EMD needs non-empty histograms");
  }
  return Emd1D(p.Normalized(), q.Normalized());
}

Result<double> EmdGeneral(const std::vector<double>& supply,
                          const std::vector<double>& demand,
                          const std::vector<std::vector<double>>& cost) {
  std::vector<double> s;
  std::vector<double> d;
  FAIRJOB_RETURN_IF_ERROR(ValidateAndNormalize(supply, &s, "supply"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAndNormalize(demand, &d, "demand"));
  if (cost.size() != s.size()) {
    return Status::InvalidArgument("cost matrix row count != supply size");
  }
  for (const auto& row : cost) {
    if (row.size() != d.size()) {
      return Status::InvalidArgument("cost matrix column count != demand size");
    }
    for (double c : row) {
      if (c < 0.0) return Status::InvalidArgument("cost entries must be >= 0");
    }
  }

  // Min-cost flow on the bipartite transportation network:
  // source (0) -> supply nodes (1..m) -> demand nodes (m+1..m+n) -> sink.
  size_t m = s.size();
  size_t n = d.size();
  size_t source = 0;
  size_t sink = m + n + 1;
  size_t num_nodes = m + n + 2;

  struct Edge {
    size_t to;
    double cap;
    double cost;
    size_t rev;  // index of reverse edge in graph[to]
  };
  std::vector<std::vector<Edge>> graph(num_nodes);
  auto add_edge = [&](size_t from, size_t to, double cap, double edge_cost) {
    graph[from].push_back(Edge{to, cap, edge_cost, graph[to].size()});
    graph[to].push_back(Edge{from, 0.0, -edge_cost, graph[from].size() - 1});
  };
  for (size_t i = 0; i < m; ++i) add_edge(source, 1 + i, s[i], 0.0);
  for (size_t j = 0; j < n; ++j) add_edge(1 + m + j, sink, d[j], 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      add_edge(1 + i, 1 + m + j, std::numeric_limits<double>::infinity(),
               cost[i][j]);
    }
  }

  double total_cost = 0.0;
  double remaining = 1.0;  // normalized total mass
  const double inf = std::numeric_limits<double>::infinity();
  while (remaining > kMassEps) {
    // Bellman-Ford shortest path by cost (handles the negative reverse arcs).
    std::vector<double> dist(num_nodes, inf);
    std::vector<size_t> prev_node(num_nodes, num_nodes);
    std::vector<size_t> prev_edge(num_nodes, 0);
    dist[source] = 0.0;
    for (size_t iter = 0; iter + 1 < num_nodes; ++iter) {
      bool changed = false;
      for (size_t u = 0; u < num_nodes; ++u) {
        if (dist[u] == inf) continue;
        for (size_t e = 0; e < graph[u].size(); ++e) {
          const Edge& edge = graph[u][e];
          if (edge.cap <= kMassEps) continue;
          double nd = dist[u] + edge.cost;
          if (nd < dist[edge.to] - 1e-15) {
            dist[edge.to] = nd;
            prev_node[edge.to] = u;
            prev_edge[edge.to] = e;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    if (dist[sink] == inf) {
      return Status::Internal("transportation network disconnected");
    }
    // Bottleneck along the path.
    double push = remaining;
    for (size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph[prev_node[v]][prev_edge[v]].cap);
    }
    for (size_t v = sink; v != source; v = prev_node[v]) {
      Edge& edge = graph[prev_node[v]][prev_edge[v]];
      edge.cap -= push;
      graph[edge.to][edge.rev].cap += push;
    }
    total_cost += push * dist[sink];
    remaining -= push;
  }
  return total_cost;
}

}  // namespace fairjob
