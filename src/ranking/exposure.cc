#include "ranking/exposure.h"

#include <cmath>

namespace fairjob {

double ExposureAtRank(size_t rank) {
  return 1.0 / std::log(1.0 + static_cast<double>(rank));
}

double ExposureAtRankPower(size_t rank, double gamma) {
  return std::pow(static_cast<double>(rank), -gamma);
}

Result<double> RelevanceFromRank(size_t rank, size_t result_size) {
  if (rank == 0) return Status::InvalidArgument("ranks are 1-based");
  if (rank > result_size) {
    return Status::InvalidArgument("rank exceeds result-set size");
  }
  return 1.0 - static_cast<double>(rank) / static_cast<double>(result_size);
}

double TotalExposure(const std::vector<size_t>& ranks) {
  double total = 0.0;
  for (size_t r : ranks) total += ExposureAtRank(r);
  return total;
}

Result<double> TotalRelevance(const std::vector<size_t>& ranks,
                              size_t result_size) {
  double total = 0.0;
  for (size_t r : ranks) {
    FAIRJOB_ASSIGN_OR_RETURN(double rel, RelevanceFromRank(r, result_size));
    total += rel;
  }
  return total;
}

}  // namespace fairjob
