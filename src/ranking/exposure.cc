#include "ranking/exposure.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>

namespace fairjob {
namespace {

// The one place the log-inverse curve is written down; the memo table below
// is filled by this expression, so table lookups are bitwise-identical to
// direct computation.
double LogInverseExposure(size_t rank) {
  return 1.0 / std::log(1.0 + static_cast<double>(rank));
}

// One generation of the shared memo table. Generations are never freed:
// outstanding PositionBiasTable::View pointers must stay valid for the
// process lifetime, and doubling growth bounds the retained total at 2x the
// final size.
struct BiasTableGen {
  size_t size;
  double* data;
};

std::atomic<const BiasTableGen*> g_bias_table{nullptr};
std::mutex g_bias_grow_mutex;

const BiasTableGen* GrowBiasTable(size_t min_ranks) {
  std::lock_guard<std::mutex> lock(g_bias_grow_mutex);
  const BiasTableGen* current = g_bias_table.load(std::memory_order_acquire);
  if (current != nullptr && current->size >= min_ranks) return current;
  size_t size = current != nullptr ? current->size : 0;
  if (size < 1024) size = 1024;
  while (size < min_ranks) size *= 2;
  auto* grown = new BiasTableGen{size, new double[size]};
  size_t copied = 0;
  if (current != nullptr) {
    // Carrying the old prefix over by copy (not recomputation) makes the
    // growth guaranteed-identical even if libm ever differed call-to-call.
    std::memcpy(grown->data, current->data, current->size * sizeof(double));
    copied = current->size;
  }
  for (size_t pos = copied; pos < size; ++pos) {
    grown->data[pos] = LogInverseExposure(pos + 1);
  }
  g_bias_table.store(grown, std::memory_order_release);
  return grown;
}

}  // namespace

PositionBiasTable::View PositionBiasTable::LogInverse(size_t min_ranks) {
  const BiasTableGen* table = g_bias_table.load(std::memory_order_acquire);
  if (min_ranks > 0 && (table == nullptr || table->size < min_ranks)) {
    table = GrowBiasTable(min_ranks);
  }
  if (table == nullptr) return View{};
  return View{table->data, table->size};
}

double ExposureAtRank(size_t rank) {
  // Read-only probe: a one-off caller never grows (or allocates) the table;
  // the batched engines grow it via PositionBiasTable::LogInverse.
  const BiasTableGen* table = g_bias_table.load(std::memory_order_acquire);
  if (table != nullptr && rank >= 1 && rank <= table->size) {
    return table->data[rank - 1];
  }
  return LogInverseExposure(rank);
}

double ExposureAtRankPower(size_t rank, double gamma) {
  return std::pow(static_cast<double>(rank), -gamma);
}

Result<double> RelevanceFromRank(size_t rank, size_t result_size) {
  if (rank == 0) return Status::InvalidArgument("ranks are 1-based");
  if (rank > result_size) {
    return Status::InvalidArgument("rank exceeds result-set size");
  }
  return 1.0 - static_cast<double>(rank) / static_cast<double>(result_size);
}

double TotalExposure(const std::vector<size_t>& ranks) {
  double total = 0.0;
  for (size_t r : ranks) total += ExposureAtRank(r);
  return total;
}

Result<double> TotalRelevance(const std::vector<size_t>& ranks,
                              size_t result_size) {
  double total = 0.0;
  for (size_t r : ranks) {
    FAIRJOB_ASSIGN_OR_RETURN(double rel, RelevanceFromRank(r, result_size));
    total += rel;
  }
  return total;
}

}  // namespace fairjob
