#include "ranking/histogram.h"

#include <cmath>

namespace fairjob {

Result<Histogram> Histogram::Make(size_t num_bins, double lo, double hi) {
  if (num_bins < 1) {
    return Status::InvalidArgument("histogram needs at least one bin");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("histogram range must satisfy lo < hi");
  }
  return Histogram(num_bins, lo, hi);
}

Histogram Histogram::Canonical() { return Histogram(10, 0.0, 1.0); }

size_t Histogram::BinOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  double frac = (value - lo_) / (hi_ - lo_);
  size_t bin = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  return bin;
}

void Histogram::Add(double value) {
  counts_[BinOf(value)] += 1.0;
  total_ += 1.0;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) out[i] = counts_[i] / total_;
  return out;
}

}  // namespace fairjob
