#ifndef FAIRJOB_RANKING_EXPOSURE_H_
#define FAIRJOB_RANKING_EXPOSURE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace fairjob {

// Position-bias exposure of a 1-based rank: 1 / ln(1 + rank). Rank 1 gets
// 1/ln(2) ≈ 1.44; exposure decays logarithmically as in Singh & Joachims /
// Biega et al., matching the paper's Figure 5 worked example.
//
// Memo-backed: once the process-shared PositionBiasTable covers `rank`, the
// value is served from it instead of recomputing the transcendental. Table
// entries are computed by the exact same expression, so the memoized and
// direct paths return bitwise-identical doubles (cross-checked in
// tests/exposure_test.cc). This is the single position-bias helper — the
// marketplace measures (core/unfairness_measures.cc) route through it too.
double ExposureAtRank(size_t rank);

// Process-shared memoized ExposureAtRank values, grown on demand to the
// longest ranking a batched cube build has seen. Retired generations are
// kept alive for the process lifetime (growth doubles, so the total memory
// stays under 2x the final table), which makes a published View pointer
// valid forever — batch engines may hold it across pool threads without
// pinning anything.
class PositionBiasTable {
 public:
  struct View {
    // bias[pos] == ExposureAtRank(pos + 1) for 0-based position pos < size.
    const double* bias = nullptr;
    size_t size = 0;
  };

  // A view covering at least `min_ranks` ranks (1..size), growing the shared
  // table if needed. Thread-safe; lock-free once the table covers the
  // request. min_ranks == 0 returns whatever is currently published (maybe
  // an empty view).
  static View LogInverse(size_t min_ranks);
};

// Alternative position-bias curve: rank^(−gamma), the power-law click model
// (gamma = 1 is the classic 1/rank falloff; larger gamma is steeper). Used
// by the exposure-model ablation — note that a *constant rescaling* of an
// exposure curve cancels in the share-based unfairness, so only genuinely
// different curve shapes (like this one vs the log-inverse) can change
// results. Precondition: rank >= 1.
double ExposureAtRankPower(size_t rank, double gamma);

// Rank-derived relevance 1 - rank/N for a 1-based rank within a result set
// of size N (the proxy the paper uses when true scores are unavailable):
// rank 1 -> 1 - 1/N, rank N -> 0.
//
// Errors: InvalidArgument if rank is 0 or exceeds N.
Result<double> RelevanceFromRank(size_t rank, size_t result_size);

// Sums ExposureAtRank over a set of 1-based ranks.
double TotalExposure(const std::vector<size_t>& ranks);

// Sums RelevanceFromRank over 1-based ranks within a result set of size N.
Result<double> TotalRelevance(const std::vector<size_t>& ranks,
                              size_t result_size);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_EXPOSURE_H_
