#ifndef FAIRJOB_RANKING_SIMD_H_
#define FAIRJOB_RANKING_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fairjob {
namespace simd {

// Runtime-dispatched SIMD kernels behind the batched list-distance engine
// (ranking/list_batch.h). Two primitives cover the hot loops:
//
//  * IntersectPopcount — popcount of the AND of two membership bitmaps, the
//    whole cost of the dense-universe Jaccard sweep;
//  * GatherPositions — out[r] = pos[ids[r]], the membership/rank scan that
//    feeds the Kendall-Tau / Footrule / RBO kernels (position arrays are
//    int32 with −1 for "absent", so one gather answers both "what rank" and
//    "is it a member").
//
// Both are integer-only, so the SIMD variants are *bitwise* equivalent to
// the scalar ones — no floating-point reassociation is possible — and the
// engine's bitwise contract against the per-pair references is preserved
// unconditionally (tests/list_batch_test.cc runs the differential over
// off-width tails and random inputs).
//
// Dispatch: the scalar fallback (portable, std::popcount) always exists;
// when the binary was compiled with FAIRJOB_ENABLE_AVX2 *and* the CPU
// reports AVX2 at runtime, the function pointers below resolve to the AVX2
// variants on first use. `ForceScalar` pins the dispatch for benchmarking.

// Scalar reference implementations (always available; the differential
// baseline).
size_t IntersectPopcountScalar(const uint64_t* a, const uint64_t* b,
                               size_t words);
void GatherPositionsScalar(const int32_t* pos, const int32_t* ids, size_t n,
                           int32_t* out);

// AVX2 variants. Compiled only when FAIRJOB_ENABLE_AVX2 is defined (the
// CMake option of the same name); calling them requires Avx2Available().
#if defined(FAIRJOB_ENABLE_AVX2)
size_t IntersectPopcountAvx2(const uint64_t* a, const uint64_t* b,
                             size_t words);
void GatherPositionsAvx2(const int32_t* pos, const int32_t* ids, size_t n,
                         int32_t* out);
#endif

// True when the AVX2 variants are both compiled in and supported by the
// running CPU.
bool Avx2Available();

// Dispatched entry points used by the engine's hot loops.
size_t IntersectPopcount(const uint64_t* a, const uint64_t* b, size_t words);
void GatherPositions(const int32_t* pos, const int32_t* ids, size_t n,
                     int32_t* out);

// "avx2" or "scalar" — what the dispatched entry points currently run.
const char* ActiveKernel();

// Benchmark hook: true pins dispatch to the scalar variants, false restores
// auto-detection. Not thread-safe against concurrent kernel calls; flip it
// only around single-threaded timing loops.
void ForceScalar(bool force);

}  // namespace simd
}  // namespace fairjob

#endif  // FAIRJOB_RANKING_SIMD_H_
