#ifndef FAIRJOB_RANKING_SIMD_H_
#define FAIRJOB_RANKING_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fairjob {
namespace simd {

// Runtime-dispatched SIMD kernels behind the batched engines. Four
// primitives cover the hot loops:
//
//  * IntersectPopcount — popcount of the AND of two membership bitmaps, the
//    whole cost of the dense-universe Jaccard sweep (ranking/list_batch.h);
//  * GatherPositions — out[r] = pos[ids[r]], the membership/rank scan that
//    feeds the Kendall-Tau / Footrule / RBO kernels (position arrays are
//    int32 with −1 for "absent", so one gather answers both "what rank" and
//    "is it a member");
//  * CompressPositions — set-bit positions of a bitmap in ascending order,
//    the per-group member sweep of the batched marketplace engine
//    (core/marketplace_batch.h);
//  * MaskedBinCount — counts[bins[p]] += 1 for every set bit p, the
//    histogram scatter of the same engine.
//
// All are integer-only, so the SIMD variants are *bitwise* equivalent to
// the scalar ones — no floating-point reassociation is possible — and the
// engines' bitwise contracts against the per-pair/per-cell references are
// preserved unconditionally (tests/list_batch_test.cc and
// tests/marketplace_batch_test.cc run the differentials over off-width
// tails and random inputs).
//
// Dispatch: the scalar fallback (portable, std::popcount) always exists;
// when the binary was compiled with FAIRJOB_ENABLE_AVX2 *and* the CPU
// reports AVX2 at runtime, the function pointers below resolve to the AVX2
// variants on first use. `ForceScalar` pins the dispatch for benchmarking.

// Scalar reference implementations (always available; the differential
// baseline).
size_t IntersectPopcountScalar(const uint64_t* a, const uint64_t* b,
                               size_t words);
void GatherPositionsScalar(const int32_t* pos, const int32_t* ids, size_t n,
                           int32_t* out);
// Writes the 0-based positions of the set bits of `bits` (ascending) to
// `out` and returns how many were written. `out` must have room for the
// bitmap's popcount; bit p of word w is position 64*w + p.
size_t CompressPositionsScalar(const uint64_t* bits, size_t words,
                               int32_t* out);
// counts[bins[p]] += 1 for every set bit p of `bits`. `bins` must cover
// every set position; `counts` must cover every referenced bin.
void MaskedBinCountScalar(const uint64_t* bits, size_t words,
                          const int32_t* bins, uint32_t* counts);

// AVX2 variants. Compiled only when FAIRJOB_ENABLE_AVX2 is defined (the
// CMake option of the same name); calling them requires Avx2Available().
#if defined(FAIRJOB_ENABLE_AVX2)
size_t IntersectPopcountAvx2(const uint64_t* a, const uint64_t* b,
                             size_t words);
void GatherPositionsAvx2(const int32_t* pos, const int32_t* ids, size_t n,
                         int32_t* out);
size_t CompressPositionsAvx2(const uint64_t* bits, size_t words, int32_t* out);
void MaskedBinCountAvx2(const uint64_t* bits, size_t words,
                        const int32_t* bins, uint32_t* counts);
#endif

// True when the AVX2 variants are both compiled in and supported by the
// running CPU.
bool Avx2Available();

// Dispatched entry points used by the engine's hot loops.
size_t IntersectPopcount(const uint64_t* a, const uint64_t* b, size_t words);
void GatherPositions(const int32_t* pos, const int32_t* ids, size_t n,
                     int32_t* out);
size_t CompressPositions(const uint64_t* bits, size_t words, int32_t* out);
void MaskedBinCount(const uint64_t* bits, size_t words, const int32_t* bins,
                    uint32_t* counts);

// "avx2" or "scalar" — what the dispatched entry points currently run.
const char* ActiveKernel();

// Benchmark hook: true pins dispatch to the scalar variants, false restores
// auto-detection. Not thread-safe against concurrent kernel calls; flip it
// only around single-threaded timing loops — or use ScopedScalarKernels,
// which pins before worker threads spawn and restores on destruction.
void ForceScalar(bool force);

// RAII pin for tests and benches: forces the scalar kernels for the scope's
// lifetime and restores auto-detection on destruction. Construct it BEFORE
// spawning any thread that calls a kernel (ForceScalar is not thread-safe
// against concurrent kernel calls) and let it die after they join.
class ScopedScalarKernels {
 public:
  explicit ScopedScalarKernels(bool force = true) { ForceScalar(force); }
  ~ScopedScalarKernels() { ForceScalar(false); }
  ScopedScalarKernels(const ScopedScalarKernels&) = delete;
  ScopedScalarKernels& operator=(const ScopedScalarKernels&) = delete;
};

}  // namespace simd
}  // namespace fairjob

#endif  // FAIRJOB_RANKING_SIMD_H_
