#include "ranking/simd.h"

#include <atomic>
#include <bit>

#if defined(FAIRJOB_ENABLE_AVX2)
#include <immintrin.h>
#endif

namespace fairjob {
namespace simd {

size_t IntersectPopcountScalar(const uint64_t* a, const uint64_t* b,
                               size_t words) {
  size_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    total += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

void GatherPositionsScalar(const int32_t* pos, const int32_t* ids, size_t n,
                           int32_t* out) {
  for (size_t r = 0; r < n; ++r) {
    out[r] = pos[ids[r]];
  }
}

size_t CompressPositionsScalar(const uint64_t* bits, size_t words,
                               int32_t* out) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = bits[w];
    const int32_t base = static_cast<int32_t>(w << 6);
    while (word != 0) {
      out[count++] = base + std::countr_zero(word);
      word &= word - 1;
    }
  }
  return count;
}

void MaskedBinCountScalar(const uint64_t* bits, size_t words,
                          const int32_t* bins, uint32_t* counts) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = bits[w];
    const size_t base = w << 6;
    while (word != 0) {
      counts[bins[base + static_cast<size_t>(std::countr_zero(word))]] += 1;
      word &= word - 1;
    }
  }
}

#if defined(FAIRJOB_ENABLE_AVX2)

// AND + positional-popcount sweep: the 4-bit-nibble LUT popcount (vpshufb)
// with per-iteration psadbw reduction into four 64-bit lanes. Exact for any
// `words`; the <4-word tail falls back to the scalar loop, so off-width
// bitmaps (universe % 256 != 0) produce identical counts.
__attribute__((target("avx2"))) size_t IntersectPopcountAvx2(
    const uint64_t* a, const uint64_t* b, size_t words) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    __m256i v = _mm256_and_si256(va, vb);
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                     _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t total =
      static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < words; ++w) {
    total += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

__attribute__((target("avx2"))) void GatherPositionsAvx2(const int32_t* pos,
                                                         const int32_t* ids,
                                                         size_t n,
                                                         int32_t* out) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + r));
    __m256i v = _mm256_i32gather_epi32(pos, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r), v);
  }
  for (; r < n; ++r) {
    out[r] = pos[ids[r]];
  }
}

// Membership bitmaps of a marketplace cell are sparse for most groups (an
// intersectional group holds a few percent of a ranking), so the win is
// skipping empty regions wholesale: vptest a 4-word block and fall into the
// scalar bit-expansion only when something is set. Expansion itself stays
// scalar — positions must come out in ascending order and the per-word work
// is O(popcount), which vectorizing cannot beat on sparse rows. Integer-only
// either way, so the output is bitwise-identical to the scalar kernel.
__attribute__((target("avx2"))) size_t CompressPositionsAvx2(
    const uint64_t* bits, size_t words, int32_t* out) {
  size_t count = 0;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    if (_mm256_testz_si256(v, v)) continue;
    for (size_t k = w; k < w + 4; ++k) {
      uint64_t word = bits[k];
      const int32_t base = static_cast<int32_t>(k << 6);
      while (word != 0) {
        out[count++] = base + std::countr_zero(word);
        word &= word - 1;
      }
    }
  }
  for (; w < words; ++w) {
    uint64_t word = bits[w];
    const int32_t base = static_cast<int32_t>(w << 6);
    while (word != 0) {
      out[count++] = base + std::countr_zero(word);
      word &= word - 1;
    }
  }
  return count;
}

// Same zero-block skip; the scatter into `counts` is inherently scalar (bins
// collide), so only the empty-region traversal is vectorized.
__attribute__((target("avx2"))) void MaskedBinCountAvx2(const uint64_t* bits,
                                                        size_t words,
                                                        const int32_t* bins,
                                                        uint32_t* counts) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    if (_mm256_testz_si256(v, v)) continue;
    for (size_t k = w; k < w + 4; ++k) {
      uint64_t word = bits[k];
      const size_t base = k << 6;
      while (word != 0) {
        counts[bins[base + static_cast<size_t>(std::countr_zero(word))]] += 1;
        word &= word - 1;
      }
    }
  }
  for (; w < words; ++w) {
    uint64_t word = bits[w];
    const size_t base = w << 6;
    while (word != 0) {
      counts[bins[base + static_cast<size_t>(std::countr_zero(word))]] += 1;
      word &= word - 1;
    }
  }
}

#endif  // FAIRJOB_ENABLE_AVX2

namespace {

std::atomic<bool> g_force_scalar{false};

bool DetectAvx2() {
#if defined(FAIRJOB_ENABLE_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

inline bool UseAvx2() {
  return Avx2Available() && !g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace

bool Avx2Available() {
  static const bool available = DetectAvx2();
  return available;
}

size_t IntersectPopcount(const uint64_t* a, const uint64_t* b, size_t words) {
#if defined(FAIRJOB_ENABLE_AVX2)
  if (UseAvx2()) return IntersectPopcountAvx2(a, b, words);
#endif
  return IntersectPopcountScalar(a, b, words);
}

void GatherPositions(const int32_t* pos, const int32_t* ids, size_t n,
                     int32_t* out) {
#if defined(FAIRJOB_ENABLE_AVX2)
  if (UseAvx2()) {
    GatherPositionsAvx2(pos, ids, n, out);
    return;
  }
#endif
  GatherPositionsScalar(pos, ids, n, out);
}

size_t CompressPositions(const uint64_t* bits, size_t words, int32_t* out) {
#if defined(FAIRJOB_ENABLE_AVX2)
  if (UseAvx2()) return CompressPositionsAvx2(bits, words, out);
#endif
  return CompressPositionsScalar(bits, words, out);
}

void MaskedBinCount(const uint64_t* bits, size_t words, const int32_t* bins,
                    uint32_t* counts) {
#if defined(FAIRJOB_ENABLE_AVX2)
  if (UseAvx2()) {
    MaskedBinCountAvx2(bits, words, bins, counts);
    return;
  }
#endif
  MaskedBinCountScalar(bits, words, bins, counts);
}

const char* ActiveKernel() { return UseAvx2() ? "avx2" : "scalar"; }

void ForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace fairjob
