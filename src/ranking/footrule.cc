#include "ranking/footrule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "ranking/list_internal.h"

namespace fairjob {
namespace {

using ranking_internal::RankPositions;

}  // namespace

Result<double> FootruleDistance(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("footrule needs non-empty lists");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "full footrule needs lists over the same item set; use "
        "FootruleTopK for top-k lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, RankPositions(a, 1));
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_b, RankPositions(b, 1));
  size_t n = a.size();
  uint64_t total = 0;
  for (size_t r = 0; r < n; ++r) {
    size_t pa = r + 1;  // 1-based position of a[r] in a
    auto it = pos_b.find(a[r]);
    if (it == pos_b.end()) {
      return Status::InvalidArgument("lists rank different item sets (item " +
                                     std::to_string(a[r]) + " missing)");
    }
    total += static_cast<uint64_t>(
        std::llabs(static_cast<long long>(pa) -
                   static_cast<long long>(it->second)));
  }
  if (n == 1) return 0.0;
  // Maximum of Σ|pos_a - pos_b| over permutations is ⌊n²/2⌋ (full reversal).
  double max_total = std::floor(static_cast<double>(n) *
                                static_cast<double>(n) / 2.0);
  return static_cast<double>(total) / max_total;
}

Result<double> FootruleTopK(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("footrule needs non-empty lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, RankPositions(a, 1));
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_b, RankPositions(b, 1));
  double la = static_cast<double>(a.size()) + 1.0;  // virtual position ℓ_a
  double lb = static_cast<double>(b.size()) + 1.0;

  // Canonical summation order — a's items in rank order, then b-only items
  // in rank order. The batched kernel (ranking/list_batch.h) accumulates the
  // same terms in the same order, which keeps the two paths bitwise
  // identical (iterating the hash maps here would tie the rounding to their
  // bucket layout instead).
  double total = 0.0;
  for (size_t r = 0; r < a.size(); ++r) {
    size_t pa = r + 1;
    auto it = pos_b.find(a[r]);
    double pb = it == pos_b.end() ? lb : static_cast<double>(it->second);
    total += std::fabs(static_cast<double>(pa) - pb);
  }
  for (size_t r = 0; r < b.size(); ++r) {
    if (pos_a.count(b[r]) == 0) {
      total += std::fabs(la - static_cast<double>(r + 1));
    }
  }

  // Normalizer: the disjoint-lists value — every item of `a` is charged
  // |pos − ℓ_b| and vice versa.
  double max_total = 0.0;
  for (size_t r = 1; r <= a.size(); ++r) {
    max_total += std::fabs(static_cast<double>(r) - lb);
  }
  for (size_t r = 1; r <= b.size(); ++r) {
    max_total += std::fabs(static_cast<double>(r) - la);
  }
  if (max_total <= 0.0) return 0.0;
  double d = total / max_total;
  return std::min(1.0, std::max(0.0, d));
}

}  // namespace fairjob
