#include "ranking/footrule.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

namespace fairjob {
namespace {

Result<std::unordered_map<int32_t, size_t>> PositionsOf(const RankedList& list) {
  std::unordered_map<int32_t, size_t> pos;
  pos.reserve(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    if (!pos.emplace(list[i], i + 1).second) {  // 1-based positions
      return Status::InvalidArgument("ranked list contains duplicate item id " +
                                     std::to_string(list[i]));
    }
  }
  return pos;
}

}  // namespace

Result<double> FootruleDistance(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("footrule needs non-empty lists");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "full footrule needs lists over the same item set; use "
        "FootruleTopK for top-k lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, PositionsOf(a));
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_b, PositionsOf(b));
  size_t n = a.size();
  uint64_t total = 0;
  for (const auto& [item, pa] : pos_a) {
    auto it = pos_b.find(item);
    if (it == pos_b.end()) {
      return Status::InvalidArgument("lists rank different item sets (item " +
                                     std::to_string(item) + " missing)");
    }
    total += static_cast<uint64_t>(
        std::llabs(static_cast<long long>(pa) -
                   static_cast<long long>(it->second)));
  }
  if (n == 1) return 0.0;
  // Maximum of Σ|pos_a - pos_b| over permutations is ⌊n²/2⌋ (full reversal).
  double max_total = std::floor(static_cast<double>(n) *
                                static_cast<double>(n) / 2.0);
  return static_cast<double>(total) / max_total;
}

Result<double> FootruleTopK(const RankedList& a, const RankedList& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("footrule needs non-empty lists");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_a, PositionsOf(a));
  FAIRJOB_ASSIGN_OR_RETURN(auto pos_b, PositionsOf(b));
  double la = static_cast<double>(a.size()) + 1.0;  // virtual position ℓ_a
  double lb = static_cast<double>(b.size()) + 1.0;

  double total = 0.0;
  for (const auto& [item, pa] : pos_a) {
    auto it = pos_b.find(item);
    double pb = it == pos_b.end() ? lb : static_cast<double>(it->second);
    total += std::fabs(static_cast<double>(pa) - pb);
  }
  for (const auto& [item, pb] : pos_b) {
    if (pos_a.count(item) == 0) {
      total += std::fabs(la - static_cast<double>(pb));
    }
  }

  // Normalizer: the disjoint-lists value — every item of `a` is charged
  // |pos − ℓ_b| and vice versa.
  double max_total = 0.0;
  for (size_t r = 1; r <= a.size(); ++r) {
    max_total += std::fabs(static_cast<double>(r) - lb);
  }
  for (size_t r = 1; r <= b.size(); ++r) {
    max_total += std::fabs(static_cast<double>(r) - la);
  }
  if (max_total <= 0.0) return 0.0;
  double d = total / max_total;
  return std::min(1.0, std::max(0.0, d));
}

}  // namespace fairjob
