#ifndef FAIRJOB_RANKING_JACCARD_H_
#define FAIRJOB_RANKING_JACCARD_H_

#include "common/status.h"
#include "ranking/kendall_tau.h"

namespace fairjob {

// Jaccard index |A ∩ B| / |A ∪ B| between the item *sets* of two ranked
// lists (rank order is ignored). Result in [0, 1]; 1 = same set.
//
// Errors: InvalidArgument on empty lists or duplicate items.
Result<double> JaccardIndex(const RankedList& a, const RankedList& b);

// 1 - JaccardIndex: the set-dissimilarity the framework uses as an
// unfairness contribution (higher = more divergent results).
Result<double> JaccardDistance(const RankedList& a, const RankedList& b);

// Overlap at depth k: |top_k(A) ∩ top_k(B)| / k, a common companion measure
// (exposed as an extension; not used by the paper's tables).
Result<double> OverlapAtK(const RankedList& a, const RankedList& b, size_t k);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_JACCARD_H_
