#ifndef FAIRJOB_RANKING_RBO_H_
#define FAIRJOB_RANKING_RBO_H_

#include "common/status.h"
#include "ranking/kendall_tau.h"

namespace fairjob {

// Rank-biased overlap (Webber, Moffat & Zobel 2010): a top-weighted
// similarity between indefinite rankings,
//   RBO(S, T, p) = (1 − p) Σ_{d≥1} p^{d−1} · |S_{:d} ∩ T_{:d}| / d.
// We compute the extrapolated point estimate RBO_ext for the observed
// prefixes: the agreement at the deepest evaluated depth is assumed to
// persist. p controls top-weightedness (p → 0: only rank 1 matters;
// typical p = 0.9 puts ~86% of the weight on the top 10).
//
// Result in [0, 1]; 1 = identical rankings.
//
// Errors: InvalidArgument on empty lists, duplicates, or p outside (0, 1).
Result<double> RboSimilarity(const RankedList& a, const RankedList& b,
                             double p = 0.9);

// 1 − RBO: the distance form used as an unfairness contribution.
Result<double> RboDistance(const RankedList& a, const RankedList& b,
                           double p = 0.9);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_RBO_H_
