#ifndef FAIRJOB_RANKING_KENDALL_TAU_H_
#define FAIRJOB_RANKING_KENDALL_TAU_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairjob {

// A ranked result list: item ids in rank order, best first.
using RankedList = std::vector<int32_t>;

// Normalized Kendall-Tau distance between two total orders of the *same*
// item set: fraction of discordant pairs in [0, 1] (0 = identical order,
// 1 = reversed). O(n log n) via merge-sort inversion counting.
//
// Errors: InvalidArgument if the lists are not permutations of one another,
// contain duplicates, or are empty.
Result<double> KendallTauDistance(const RankedList& a, const RankedList& b);

// Kendall-Tau correlation tau = 1 - 2 * distance, in [-1, 1].
Result<double> KendallTauCorrelation(const RankedList& a, const RankedList& b);

// Generalized Kendall-Tau distance K^(p) of Fagin, Kumar & Sivakumar
// ("Comparing top k lists", 2003) between two top-k lists that may rank
// different items. Pair categories:
//   * both items in both lists: 1 if order disagrees;
//   * i in both, j in only one list and ranked above i there: 1;
//   * i only in a, j only in b: 1 (they cannot agree);
//   * both items missing from one list entirely: penalty p in [0, 1]
//     (p = 0 optimistic, p = 0.5 neutral).
// Result is normalized by the maximum attainable value so it lies in [0, 1].
//
// Errors: InvalidArgument if either list is empty or contains duplicates,
// or p is outside [0, 1].
Result<double> KendallTauTopK(const RankedList& a, const RankedList& b,
                              double p = 0.5);

// Counts inversions of `v` w.r.t. ascending order; exposed for testing and
// benchmarks. O(n log n).
uint64_t CountInversions(std::vector<int32_t> v);

// Allocation-free variant for batched kernels: sorts `v` in place, reusing
// `scratch` (grown as needed, never shrunk) for the merge buffer. Identical
// counts to CountInversions.
uint64_t CountInversionsInPlace(std::vector<int32_t>& v,
                                std::vector<int32_t>& scratch);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_KENDALL_TAU_H_
