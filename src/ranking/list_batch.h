#ifndef FAIRJOB_RANKING_LIST_BATCH_H_
#define FAIRJOB_RANKING_LIST_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ranking/kendall_tau.h"

namespace fairjob {

// Build-time statistics of a ListDistanceBatch (FaginStats-style; the same
// numbers are published as `measure.batch.*` counters, see
// docs/observability.md).
struct ListBatchStats {
  uint64_t lists_interned = 0;  // lists sharing the arena
  uint64_t unique_lists = 0;    // distinct list contents (arena slots)
  uint64_t items_interned = 0;  // total item slots across all lists
  uint64_t universe_size = 0;   // distinct item ids across all lists
};

// Batched list-distance engine: the per-cell fast path behind
// BuildSearchCube's pairwise distance matrix.
//
// The per-pair kernels (KendallTauTopK, JaccardDistance, FootruleTopK,
// RboDistance, KendallTauDistance) are self-contained: every call rebuilds
// `unordered_map` position lookups and re-validates duplicates for both
// lists. Evaluating all O(n²) pairs of one cell therefore hashes every list
// O(n) times. This engine interns the n lists once — item ids are mapped
// into a dense [0, U) universe, and each list gets a flat position array
// (rank of every universe item, −1 when absent) plus a membership bitmap —
// after which every pair kernel runs on flat arrays only: no hashing, no
// per-pair allocation, duplicate/size validation already done per list.
//
// Lists with identical contents share one arena slot (positions + bitmap
// stored once): at scale most users of a cell see one of a few personalized
// variants of the same ranking, so a million-observation cell costs
// arena memory proportional to its *distinct* lists. Kernels are pure
// functions of list contents, so deduplication cannot change any result.
//
// The integer hot loops (the dense-universe Jaccard popcount sweep and the
// membership/rank gathers feeding Kendall-Tau / Footrule / RBO) run through
// the runtime-dispatched SIMD kernels of ranking/simd.h — AVX2 when
// compiled in and supported, scalar otherwise; both are bitwise-equivalent
// by construction (integer-only work).
//
// Bitwise contract: on inputs both paths accept, every kernel accumulates
// exactly the same floating-point terms in exactly the same order as its
// per-pair reference, so results are bitwise identical (enforced by
// tests/list_batch_test.cc and `bench_measures_perf --batch_compare`).
// Validation is stricter in one corner: Make rejects duplicate ids anywhere
// in a list, while RboSimilarity only inspects the first min(|a|, |b|)
// positions. SearchDataset::AddObservation already enforces the stricter
// rule, so cube builds see no behavior change.
//
// The batch is immutable after Make and borrows nothing from the input
// lists, so it may be shared freely across threads; each thread passes its
// own Scratch to the kernels that need one.
class ListDistanceBatch {
 public:
  // Reusable per-thread buffers for the kernels that need scratch space.
  // Buffers grow to the largest list pair seen and are never shrunk, so a
  // row of pair evaluations allocates at most once per buffer.
  class Scratch {
   private:
    friend class ListDistanceBatch;
    std::vector<int32_t> mapped_;
    std::vector<int32_t> merge_;
    std::vector<size_t> rank_b_;
    std::vector<int32_t> gather_;
  };

  // Interns `lists` (which may be empty) into a shared arena. Errors:
  // InvalidArgument when a list is null, empty, or contains a duplicate
  // item id, or when the position arrays would exceed the documented arena
  // cap (num_lists × universe entries; guards pathological inputs).
  static Result<ListDistanceBatch> Make(
      const std::vector<const RankedList*>& lists);

  size_t num_lists() const { return rep_.size(); }
  size_t universe_size() const { return item_ids_.size(); }
  size_t list_size(size_t i) const {
    size_t slot = rep_[i];
    return offsets_[slot + 1] - offsets_[slot];
  }
  const ListBatchStats& stats() const { return stats_; }

  // Pair kernels over the lists passed to Make (indices into that vector).
  // All errors are InvalidArgument: out-of-range indices, out-of-range
  // penalty/persistence, or (full Kendall-Tau) lists over different item
  // sets.

  // ≡ KendallTauDistance(lists[i], lists[j]).
  Result<double> KendallTauFull(size_t i, size_t j, Scratch* scratch) const;
  // ≡ KendallTauTopK(lists[i], lists[j], p).
  Result<double> KendallTauTopK(size_t i, size_t j, double p,
                                Scratch* scratch) const;
  // ≡ JaccardDistance(lists[i], lists[j]).
  Result<double> Jaccard(size_t i, size_t j) const;
  // ≡ FootruleTopK(lists[i], lists[j]).
  Result<double> FootruleTopK(size_t i, size_t j) const;
  // ≡ RboDistance(lists[i], lists[j], p).
  Result<double> Rbo(size_t i, size_t j, double p) const;

 private:
  ListDistanceBatch() = default;

  Status CheckPair(size_t i, size_t j) const;

  // Dense id → original item id (error messages, tests).
  std::vector<int32_t> item_ids_;
  // Logical list index → arena slot; lists with identical contents share a
  // slot, so the arrays below are sized by distinct lists, not by n.
  std::vector<size_t> rep_;
  // Slot s's dense ids in rank order live in
  // dense_[offsets_[s], offsets_[s + 1]).
  std::vector<size_t> offsets_;
  std::vector<int32_t> dense_;
  // pos_[s * U + u]: 0-based rank of universe item u in slot s, −1 absent.
  std::vector<int32_t> pos_;
  // bits_[s * words_ + w]: membership bitmap of slot s (bit u%64 of word
  // u/64 set iff u present). Used by the Jaccard kernel when a popcount
  // sweep beats probing the shorter list.
  std::vector<uint64_t> bits_;
  size_t words_ = 0;
  ListBatchStats stats_;
};

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_LIST_BATCH_H_
