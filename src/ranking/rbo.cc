#include "ranking/rbo.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fairjob {

Result<double> RboSimilarity(const RankedList& a, const RankedList& b,
                             double p) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("RBO needs non-empty lists");
  }
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument("RBO persistence p must lie in (0, 1)");
  }
  std::unordered_set<int32_t> seen_a;
  std::unordered_set<int32_t> seen_b;
  size_t depth = std::min(a.size(), b.size());

  double weight = 1.0 - p;  // (1 − p)·p^{d−1} at d = 1
  double sum = 0.0;
  size_t overlap = 0;
  double agreement_at_depth = 0.0;
  for (size_t d = 0; d < depth; ++d) {
    if (!seen_a.insert(a[d]).second || !seen_b.insert(b[d]).second) {
      return Status::InvalidArgument("ranked list contains duplicate item id");
    }
    // Incremental overlap: a[d] may match an earlier b element and vice
    // versa; when a[d] == b[d] count it once.
    if (a[d] == b[d]) {
      ++overlap;
    } else {
      if (seen_b.count(a[d]) > 0) ++overlap;
      if (seen_a.count(b[d]) > 0) ++overlap;
    }
    agreement_at_depth =
        static_cast<double>(overlap) / static_cast<double>(d + 1);
    sum += weight * agreement_at_depth;
    weight *= p;
  }
  // Extrapolation (RBO_ext, simplified): assume the agreement observed at
  // the deepest evaluated depth persists indefinitely. The tail weight is
  // p^depth.
  double rbo = sum + std::pow(p, static_cast<double>(depth)) *
                         agreement_at_depth;
  return std::clamp(rbo, 0.0, 1.0);
}

Result<double> RboDistance(const RankedList& a, const RankedList& b, double p) {
  FAIRJOB_ASSIGN_OR_RETURN(double rbo, RboSimilarity(a, b, p));
  return 1.0 - rbo;
}

}  // namespace fairjob
