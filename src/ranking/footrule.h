#ifndef FAIRJOB_RANKING_FOOTRULE_H_
#define FAIRJOB_RANKING_FOOTRULE_H_

#include "common/status.h"
#include "ranking/kendall_tau.h"

namespace fairjob {

// Spearman's footrule: the L1 distance between the two position vectors,
// F(a, b) = Σ_i |pos_a(i) − pos_b(i)|, normalized to [0, 1] by the maximum
// ⌊n²/2⌋ attained by reversal. A companion to Kendall-Tau (they are within
// a factor 2 of each other — Diaconis & Graham); exposed as an extension
// measure for the framework.
//
// Errors: InvalidArgument if the lists are not permutations of the same
// item set or contain duplicates.
Result<double> FootruleDistance(const RankedList& a, const RankedList& b);

// The induced top-k footrule F^(ℓ) of Fagin, Kumar & Sivakumar: items
// absent from a list are charged the virtual position ℓ = (list size + 1).
// Normalized by the value attained by two fully disjoint lists of these
// sizes, giving [0, 1].
//
// Errors: InvalidArgument on empty lists or duplicates.
Result<double> FootruleTopK(const RankedList& a, const RankedList& b);

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_FOOTRULE_H_
