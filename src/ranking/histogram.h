#ifndef FAIRJOB_RANKING_HISTOGRAM_H_
#define FAIRJOB_RANKING_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace fairjob {

// Fixed-width histogram over [lo, hi]. Values outside the range are clamped
// into the boundary bins, matching how the paper bins relevance scores that
// live in [0, 1]. Used as the input to EMD-based unfairness.
class Histogram {
 public:
  // Creates an empty histogram. Preconditions: num_bins >= 1, lo < hi.
  static Result<Histogram> Make(size_t num_bins, double lo, double hi);

  // Convenience: 10 bins over [0, 1], the paper's canonical configuration.
  static Histogram Canonical();

  void Add(double value);
  void AddAll(const std::vector<double>& values);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double count(size_t bin) const { return counts_[bin]; }
  double total() const { return total_; }
  bool empty() const { return total_ == 0.0; }

  // Mass distribution summing to 1. Precondition: !empty().
  std::vector<double> Normalized() const;

  // Index of the bin `value` falls into (after clamping).
  size_t BinOf(double value) const;

 private:
  Histogram(size_t num_bins, double lo, double hi)
      : counts_(num_bins, 0.0), lo_(lo), hi_(hi) {}

  std::vector<double> counts_;
  double lo_;
  double hi_;
  double total_ = 0.0;
};

}  // namespace fairjob

#endif  // FAIRJOB_RANKING_HISTOGRAM_H_
