#include "ranking/list_batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/metrics.h"
#include "common/trace.h"
#include "ranking/simd.h"

namespace fairjob {
namespace {

// Position arrays are unique_lists × universe ints; cap the arena at 2^28
// entries (1 GiB) so a pathological cell fails loudly instead of thrashing.
constexpr uint64_t kMaxArenaEntries = uint64_t{1} << 28;

// FNV-1a over a dense-id sequence; used to bucket identical list contents
// onto one arena slot (candidates are verified element-wise).
uint64_t HashDenseIds(const int32_t* ids, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(ids[i]));
    h *= 1099511628211ULL;
  }
  return h;
}

// Gathered rank/membership scans run through fixed stack chunks so the
// scratch-less kernels (Footrule, RBO) stay allocation-free.
constexpr size_t kGatherChunk = 256;

// `measure.batch.*` observability (docs/observability.md). Resolved once;
// while metrics are disabled each hook costs one relaxed load.
Counter* PairsEvaluated() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.batch.pairs_evaluated");
  return counter;
}
Counter* ListsInterned() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.batch.lists_interned");
  return counter;
}
Counter* ItemsInterned() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.batch.items_interned");
  return counter;
}
LatencyHistogram* MakeLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("measure.batch.make_us");
  return histogram;
}

}  // namespace

Result<ListDistanceBatch> ListDistanceBatch::Make(
    const std::vector<const RankedList*>& lists) {
  ScopedTimer timer(MakeLatency());
  ListDistanceBatch batch;
  size_t n = lists.size();
  batch.rep_.reserve(n);
  batch.offsets_.push_back(0);

  // Pass 1: intern every item id into the dense [0, U) universe and
  // deduplicate list contents — identical lists map onto one arena slot, so
  // the slot arrays below scale with *distinct* lists.
  size_t total_items = 0;
  for (const RankedList* list : lists) {
    if (list == nullptr) {
      return Status::InvalidArgument("list batch given a null list");
    }
    total_items += list->size();
  }
  std::unordered_map<int32_t, int32_t> dense_of;
  dense_of.reserve(total_items);
  // Content hash → slots with that hash (collisions verified element-wise).
  std::unordered_map<uint64_t, std::vector<size_t>> slot_of_hash;
  std::vector<int32_t> scratch_ids;
  for (size_t l = 0; l < n; ++l) {
    const RankedList& list = *lists[l];
    if (list.empty()) {
      return Status::InvalidArgument(
          "list " + std::to_string(l) +
          " is empty; distance kernels need non-empty lists");
    }
    scratch_ids.clear();
    for (int32_t item : list) {
      auto [it, inserted] = dense_of.emplace(
          item, static_cast<int32_t>(batch.item_ids_.size()));
      if (inserted) batch.item_ids_.push_back(item);
      scratch_ids.push_back(it->second);
    }
    uint64_t hash = HashDenseIds(scratch_ids.data(), scratch_ids.size());
    std::vector<size_t>& candidates = slot_of_hash[hash];
    size_t slot = SIZE_MAX;
    for (size_t candidate : candidates) {
      size_t len =
          batch.offsets_[candidate + 1] - batch.offsets_[candidate];
      if (len == scratch_ids.size() &&
          std::memcmp(batch.dense_.data() + batch.offsets_[candidate],
                      scratch_ids.data(),
                      len * sizeof(int32_t)) == 0) {
        slot = candidate;
        break;
      }
    }
    if (slot == SIZE_MAX) {
      slot = batch.offsets_.size() - 1;
      batch.dense_.insert(batch.dense_.end(), scratch_ids.begin(),
                          scratch_ids.end());
      batch.offsets_.push_back(batch.dense_.size());
      candidates.push_back(slot);
    }
    batch.rep_.push_back(slot);
  }

  size_t num_slots = batch.offsets_.size() - 1;
  size_t universe = batch.item_ids_.size();
  if (static_cast<uint64_t>(num_slots) * universe > kMaxArenaEntries) {
    return Status::InvalidArgument(
        "list batch arena too large: " + std::to_string(num_slots) +
        " distinct lists x " + std::to_string(universe) + " distinct items");
  }

  // Pass 2: per-slot position arrays and membership bitmaps. A repeated
  // dense id within one slot is a duplicate — validated here once instead
  // of once per pair.
  batch.words_ = (universe + 63) / 64;
  batch.pos_.assign(num_slots * universe, -1);
  batch.bits_.assign(num_slots * batch.words_, 0);
  for (size_t s = 0; s < num_slots; ++s) {
    int32_t* pos = batch.pos_.data() + s * universe;
    uint64_t* bits = batch.bits_.data() + s * batch.words_;
    const int32_t* ids = batch.dense_.data() + batch.offsets_[s];
    size_t len = batch.offsets_[s + 1] - batch.offsets_[s];
    for (size_t r = 0; r < len; ++r) {
      int32_t u = ids[r];
      if (pos[u] != -1) {
        return Status::InvalidArgument(
            "ranked list contains duplicate item id " +
            std::to_string(batch.item_ids_[static_cast<size_t>(u)]));
      }
      pos[u] = static_cast<int32_t>(r);
      bits[static_cast<size_t>(u) / 64] |= uint64_t{1}
                                           << (static_cast<size_t>(u) % 64);
    }
  }

  batch.stats_.lists_interned = n;
  batch.stats_.unique_lists = num_slots;
  batch.stats_.items_interned = total_items;
  batch.stats_.universe_size = universe;
  ListsInterned()->Add(n);
  ItemsInterned()->Add(total_items);
  return batch;
}

Status ListDistanceBatch::CheckPair(size_t i, size_t j) const {
  if (i >= num_lists() || j >= num_lists()) {
    return Status::InvalidArgument("list index out of range");
  }
  return Status::OK();
}

Result<double> ListDistanceBatch::KendallTauFull(size_t i, size_t j,
                                                 Scratch* scratch) const {
  FAIRJOB_RETURN_IF_ERROR(CheckPair(i, j));
  PairsEvaluated()->Add(1);
  size_t na = list_size(i);
  size_t nb = list_size(j);
  if (na != nb) {
    return Status::InvalidArgument(
        "full Kendall-Tau needs lists over the same item set; use "
        "KendallTauTopK for top-k lists");
  }
  size_t si = rep_[i];
  size_t sj = rep_[j];
  const int32_t* pa = pos_.data() + si * universe_size();
  const int32_t* db = dense_.data() + offsets_[sj];
  // Rewrite j's list in terms of i's positions (the reference's `mapped`
  // vector); equal sizes and duplicate-free lists make "every item of j is
  // ranked by i" equivalent to "same item set". The gather is the SIMD
  // kernel; the absent check scans the gathered ranks.
  std::vector<int32_t>& mapped = scratch->mapped_;
  mapped.resize(nb);
  simd::GatherPositions(pa, db, nb, mapped.data());
  for (size_t r = 0; r < nb; ++r) {
    int32_t p = mapped[r];
    if (p < 0) {
      return Status::InvalidArgument(
          "lists rank different item sets (item " +
          std::to_string(item_ids_[static_cast<size_t>(db[r])]) + " missing)");
    }
  }
  if (na == 1) return 0.0;
  uint64_t inv = CountInversionsInPlace(mapped, scratch->merge_);
  double max_pairs =
      static_cast<double>(na) * static_cast<double>(na - 1) / 2.0;
  return static_cast<double>(inv) / max_pairs;
}

Result<double> ListDistanceBatch::KendallTauTopK(size_t i, size_t j, double p,
                                                 Scratch* scratch) const {
  FAIRJOB_RETURN_IF_ERROR(CheckPair(i, j));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("penalty p must lie in [0, 1]");
  }
  PairsEvaluated()->Add(1);
  size_t na = list_size(i);
  size_t nb = list_size(j);
  size_t si = rep_[i];
  size_t sj = rep_[j];
  const int32_t* pa = pos_.data() + si * universe_size();
  const int32_t* pb = pos_.data() + sj * universe_size();
  const int32_t* da = dense_.data() + offsets_[si];
  const int32_t* db = dense_.data() + offsets_[sj];

  // b-ranks over the union in the reference's order — a's items in rank
  // order, then b-only items in rank order — with `sentinel` marking items
  // absent from b (the reference's implicit below-everything rank). Both
  // rank scans run through the SIMD gather kernel.
  const size_t sentinel = nb + 1000000;
  std::vector<size_t>& rank_b = scratch->rank_b_;
  if (rank_b.size() < na + nb) rank_b.resize(na + nb);
  std::vector<int32_t>& gathered = scratch->gather_;
  if (gathered.size() < std::max(na, nb)) gathered.resize(std::max(na, nb));
  simd::GatherPositions(pb, da, na, gathered.data());
  for (size_t r = 0; r < na; ++r) {
    int32_t rb = gathered[r];
    rank_b[r] = rb >= 0 ? static_cast<size_t>(rb) : sentinel;
  }
  size_t u = na;
  simd::GatherPositions(pa, db, nb, gathered.data());
  for (size_t r = 0; r < nb; ++r) {
    if (gathered[r] < 0) rank_b[u++] = r;
  }

  // The reference's 4-case pair scan, collapsed against this union layout.
  // Positions x < na carry rank_a[x] = x (a's items in rank order), so for
  // x < y the reference's rank_a[x] < rank_a[y] test is always true there
  // and every case reduces to a rank_b comparison:
  //  · x, y < na, both absent from b              → case 4, term p;
  //  · x, y < na otherwise                        → case 1 (both in b) or
  //    case 2 (one in b; the sentinel stands in for the absent rank): term
  //    1.0 iff rank_b[x] ≥ rank_b[y];
  //  · x < na ≤ y (y is b-only, real b-rank): case 2 when x ∈ b, case 3
  //    (term 1.0) when not — and the sentinel makes both read
  //    rank_b[x] ≥ rank_b[y];
  //  · na ≤ x < y (both b-only)                   → case 4, term p.
  // The scan emits exactly the reference's terms in the reference's (x, y)
  // order, so the penalty stays bitwise-identical while each pair costs one
  // comparison instead of the 4-flag case analysis.
  double penalty = 0.0;
  for (size_t x = 0; x < na; ++x) {
    size_t rbx = rank_b[x];
    for (size_t y = x + 1; y < na; ++y) {
      size_t rby = rank_b[y];
      if (rbx == sentinel && rby == sentinel) {
        penalty += p;
      } else if (rbx >= rby) {
        penalty += 1.0;
      }
    }
    for (size_t y = na; y < u; ++y) {
      if (rbx >= rank_b[y]) penalty += 1.0;
    }
  }
  for (size_t x = na; x < u; ++x) {
    for (size_t y = x + 1; y < u; ++y) penalty += p;
  }

  auto pairs_within = [](size_t n) {
    return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  };
  double max_penalty = static_cast<double>(na) * static_cast<double>(nb) +
                       p * (pairs_within(na) + pairs_within(nb));
  if (max_penalty <= 0.0) return 0.0;
  double d = penalty / max_penalty;
  return std::min(1.0, std::max(0.0, d));
}

Result<double> ListDistanceBatch::Jaccard(size_t i, size_t j) const {
  FAIRJOB_RETURN_IF_ERROR(CheckPair(i, j));
  PairsEvaluated()->Add(1);
  size_t na = list_size(i);
  size_t nb = list_size(j);
  size_t shorter = std::min(na, nb);
  size_t si = rep_[i];
  size_t sj = rep_[j];
  size_t inter = 0;
  if (words_ <= shorter) {
    // Dense universe: one popcount sweep over the bitmaps beats probing.
    // simd::IntersectPopcount dispatches to the AVX2 nibble-LUT kernel when
    // available; the count is integer work, so both paths agree exactly.
    const uint64_t* ba = bits_.data() + si * words_;
    const uint64_t* bb = bits_.data() + sj * words_;
    inter = simd::IntersectPopcount(ba, bb, words_);
  } else {
    // Sparse universe: probe the shorter list against the other's
    // position array, a gather + sign scan in fixed stack chunks.
    size_t probe = na <= nb ? si : sj;
    size_t other = na <= nb ? sj : si;
    const int32_t* ids = dense_.data() + offsets_[probe];
    const int32_t* pos = pos_.data() + other * universe_size();
    int32_t buf[kGatherChunk];
    for (size_t base = 0; base < shorter; base += kGatherChunk) {
      size_t len = std::min(kGatherChunk, shorter - base);
      simd::GatherPositions(pos, ids + base, len, buf);
      for (size_t r = 0; r < len; ++r) {
        if (buf[r] >= 0) ++inter;
      }
    }
  }
  size_t uni = na + nb - inter;
  // Same expression as JaccardIndex / JaccardDistance.
  double index = static_cast<double>(inter) / static_cast<double>(uni);
  return 1.0 - index;
}

Result<double> ListDistanceBatch::FootruleTopK(size_t i, size_t j) const {
  FAIRJOB_RETURN_IF_ERROR(CheckPair(i, j));
  PairsEvaluated()->Add(1);
  size_t na = list_size(i);
  size_t nb = list_size(j);
  size_t si = rep_[i];
  size_t sj = rep_[j];
  const int32_t* pa = pos_.data() + si * universe_size();
  const int32_t* pb = pos_.data() + sj * universe_size();
  const int32_t* da = dense_.data() + offsets_[si];
  const int32_t* db = dense_.data() + offsets_[sj];
  double la = static_cast<double>(na) + 1.0;  // virtual position ℓ_a
  double lb = static_cast<double>(nb) + 1.0;

  // Same canonical order as the per-pair FootruleTopK: a's items in rank
  // order, then b-only items in rank order. Rank lookups run through the
  // SIMD gather in stack chunks; the FP accumulation stays scalar in the
  // reference's term order, preserving bitwise identity.
  double total = 0.0;
  int32_t buf[kGatherChunk];
  for (size_t base = 0; base < na; base += kGatherChunk) {
    size_t len = std::min(kGatherChunk, na - base);
    simd::GatherPositions(pb, da + base, len, buf);
    for (size_t r = 0; r < len; ++r) {
      size_t position_a = base + r + 1;
      int32_t rb = buf[r];
      double position_b = rb >= 0 ? static_cast<double>(rb + 1) : lb;
      total += std::fabs(static_cast<double>(position_a) - position_b);
    }
  }
  for (size_t base = 0; base < nb; base += kGatherChunk) {
    size_t len = std::min(kGatherChunk, nb - base);
    simd::GatherPositions(pa, db + base, len, buf);
    for (size_t r = 0; r < len; ++r) {
      if (buf[r] < 0) {
        total += std::fabs(la - static_cast<double>(base + r + 1));
      }
    }
  }

  double max_total = 0.0;
  for (size_t r = 1; r <= na; ++r) {
    max_total += std::fabs(static_cast<double>(r) - lb);
  }
  for (size_t r = 1; r <= nb; ++r) {
    max_total += std::fabs(static_cast<double>(r) - la);
  }
  if (max_total <= 0.0) return 0.0;
  double d = total / max_total;
  return std::min(1.0, std::max(0.0, d));
}

Result<double> ListDistanceBatch::Rbo(size_t i, size_t j, double p) const {
  FAIRJOB_RETURN_IF_ERROR(CheckPair(i, j));
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument("RBO persistence p must lie in (0, 1)");
  }
  PairsEvaluated()->Add(1);
  size_t na = list_size(i);
  size_t nb = list_size(j);
  size_t si = rep_[i];
  size_t sj = rep_[j];
  const int32_t* pa = pos_.data() + si * universe_size();
  const int32_t* pb = pos_.data() + sj * universe_size();
  const int32_t* da = dense_.data() + offsets_[si];
  const int32_t* db = dense_.data() + offsets_[sj];
  size_t depth = std::min(na, nb);

  double weight = 1.0 - p;  // (1 − p)·p^{d−1} at d = 1
  double sum = 0.0;
  size_t overlap = 0;
  double agreement_at_depth = 0.0;
  // Cross-rank lookups are gathered per chunk through the SIMD kernel; the
  // geometric-weight recurrence stays scalar in depth order (bitwise
  // contract).
  int32_t buf_rb[kGatherChunk];
  int32_t buf_ra[kGatherChunk];
  for (size_t base = 0; base < depth; base += kGatherChunk) {
    size_t len = std::min(kGatherChunk, depth - base);
    simd::GatherPositions(pb, da + base, len, buf_rb);
    simd::GatherPositions(pa, db + base, len, buf_ra);
    for (size_t r = 0; r < len; ++r) {
      size_t d = base + r;
      int32_t ai = da[d];
      int32_t bi = db[d];
      // The reference's incremental hash-set overlap, on position arrays:
      // "a[d] already seen in b" is pos_b[a[d]] <= d (b[d] included, as the
      // reference inserts before testing), and symmetrically.
      if (ai == bi) {
        ++overlap;
      } else {
        int32_t rb = buf_rb[r];
        if (rb >= 0 && static_cast<size_t>(rb) <= d) ++overlap;
        int32_t ra = buf_ra[r];
        if (ra >= 0 && static_cast<size_t>(ra) <= d) ++overlap;
      }
      agreement_at_depth =
          static_cast<double>(overlap) / static_cast<double>(d + 1);
      sum += weight * agreement_at_depth;
      weight *= p;
    }
  }
  double rbo = sum + std::pow(p, static_cast<double>(depth)) *
                         agreement_at_depth;
  return 1.0 - std::clamp(rbo, 0.0, 1.0);
}

}  // namespace fairjob
