#include "common/clock.h"

#include <chrono>

namespace fairjob {
namespace {

class SteadyClock final : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock* Clock::Real() {
  // Leaked on purpose (same rationale as MetricsRegistry::Global()): the
  // serving layer may read the clock during static destruction.
  static const SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace fairjob
