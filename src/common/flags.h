#ifndef FAIRJOB_COMMON_FLAGS_H_
#define FAIRJOB_COMMON_FLAGS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fairjob {

// Minimal command-line flag parsing for the CLI tool: supports
// `--key value`, `--key=value`, boolean `--switch`, and positional
// arguments. No registration step — callers query by name with defaults.
class Flags {
 public:
  // Parses argv-style tokens (without the program name). A token starting
  // with "--" is a flag; if it has no '=' and the next token does not start
  // with "--", that token is its value, otherwise it is boolean.
  // Errors: InvalidArgument on an empty flag name ("--" alone or "--=x").
  static Result<Flags> Parse(const std::vector<std::string>& args);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  // Value accessors with defaults; boolean flags have value "".
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  // Errors: InvalidArgument when present but unparsable.
  Result<long> GetInt(const std::string& name, long fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Every flag name that was parsed, sorted; lets commands reject flags they
  // do not understand instead of silently ignoring typos.
  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_FLAGS_H_
