#ifndef FAIRJOB_COMMON_LRU_CACHE_H_
#define FAIRJOB_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace fairjob {

// A thread-safe LRU cache striped over N independently locked shards, built
// for the query-serving hot path (docs/serving.md): lookups on distinct keys
// proceed in parallel because each key only ever touches its own shard's
// mutex. Capacity is counted in entries and distributed across the shards at
// construction; each shard evicts its own least-recently-used entry when it
// overflows, so the cache as a whole never exceeds `capacity` entries.
//
// Semantics:
//  * Get moves the entry to the front of its shard's recency list (a hit
//    refreshes the entry) and returns a copy of the value.
//  * Put inserts or overwrites, always leaving the key most-recent.
//  * A capacity of 0 disables the cache: Get always misses, Put is a no-op.
//    (Stats still count the lookups, so hit-rate math stays meaningful.)
//
// Observability: pass a metric prefix ("serve.cache") to publish
// `<prefix>.hits` / `.misses` / `.evictions` / `.insertions` counters and an
// `<prefix>.entries` gauge through the global MetricsRegistry. Independent of
// that (and of whether metrics are enabled), exact counts are always
// maintained under the shard locks and exposed via stats() — tests assert
// hits + misses == lookups on them.
//
// Value should be cheap to copy; cache std::shared_ptr<const T> for large T.
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;  // Puts creating a new entry
    uint64_t updates = 0;     // Puts overwriting an existing entry
    uint64_t evictions = 0;   // entries dropped by capacity pressure
    uint64_t erasures = 0;    // entries dropped by Erase
  };

  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8,
                           const std::string& metric_prefix = "")
      : capacity_(capacity) {
    // Never create more shards than entries: a zero-capacity shard would
    // silently refuse to cache every key that hashes to it.
    size_t shards = num_shards == 0 ? 1 : num_shards;
    if (capacity > 0 && shards > capacity) shards = capacity;
    if (capacity == 0) shards = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->capacity =
          capacity / shards + (i < capacity % shards ? 1 : 0);
    }
    if (!metric_prefix.empty()) {
      MetricsRegistry& metrics = MetricsRegistry::Global();
      hits_metric_ = metrics.counter(metric_prefix + ".hits");
      misses_metric_ = metrics.counter(metric_prefix + ".misses");
      evictions_metric_ = metrics.counter(metric_prefix + ".evictions");
      insertions_metric_ = metrics.counter(metric_prefix + ".insertions");
      entries_metric_ = metrics.gauge(metric_prefix + ".entries");
    }
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Returns a copy of the cached value and refreshes its recency, or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.lookups;
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      if (misses_metric_ != nullptr) misses_metric_->Add(1);
      return std::nullopt;
    }
    ++shard.stats.hits;
    if (hits_metric_ != nullptr) hits_metric_->Add(1);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return it->second->second;
  }

  // Inserts or overwrites; the key becomes the most recent of its shard.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
      ++shard.stats.updates;
      return;
    }
    shard.entries.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.entries.begin());
    ++shard.stats.insertions;
    size_.fetch_add(1, std::memory_order_relaxed);
    if (insertions_metric_ != nullptr) insertions_metric_->Add(1);
    if (shard.entries.size() > shard.capacity) {
      shard.index.erase(shard.entries.back().first);
      shard.entries.pop_back();
      ++shard.stats.evictions;
      size_.fetch_sub(1, std::memory_order_relaxed);
      if (evictions_metric_ != nullptr) evictions_metric_->Add(1);
    }
    PublishSize();
  }

  // Removes `key` if present; returns whether anything was removed.
  bool Erase(const Key& key) {
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.entries.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.erasures;
    size_.fetch_sub(1, std::memory_order_relaxed);
    PublishSize();
    return true;
  }

  void Clear() {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stats.erasures += shard->entries.size();
      size_.fetch_sub(shard->entries.size(), std::memory_order_relaxed);
      shard->entries.clear();
      shard->index.clear();
    }
    PublishSize();
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  // Which shard `key` lives on — exposed so tests (and capacity planners)
  // can model per-shard eviction exactly.
  size_t ShardOf(const Key& key) const {
    return ShardIndex(key);
  }

  // Keys of one shard in most-recent-first order (test observability).
  std::vector<Key> ShardKeysMostRecentFirst(size_t shard_index) const {
    const Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<Key> keys;
    keys.reserve(shard.entries.size());
    for (const auto& entry : shard.entries) keys.push_back(entry.first);
    return keys;
  }

  // Exact aggregated counts (summed across shards under their locks).
  Stats stats() const {
    Stats total;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total.lookups += shard->stats.lookups;
      total.hits += shard->stats.hits;
      total.misses += shard->stats.misses;
      total.insertions += shard->stats.insertions;
      total.updates += shard->stats.updates;
      total.evictions += shard->stats.evictions;
      total.erasures += shard->stats.erasures;
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    size_t capacity = 0;
    std::list<std::pair<Key, Value>> entries;  // front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash, Eq>
        index;
    Stats stats;
  };

  size_t ShardIndex(const Key& key) const {
    // Mix the hash before taking the remainder so unordered_map-style
    // low-bit-heavy hashes still spread across shards.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h % shards_.size());
  }

  void PublishSize() {
    if (entries_metric_ != nullptr) {
      entries_metric_->Set(static_cast<double>(size()));
    }
  }

  size_t capacity_;
  std::atomic<size_t> size_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
  Counter* insertions_metric_ = nullptr;
  Gauge* entries_metric_ = nullptr;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_LRU_CACHE_H_
