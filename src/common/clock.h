#ifndef FAIRJOB_COMMON_CLOCK_H_
#define FAIRJOB_COMMON_CLOCK_H_

#include <cstdint>

namespace fairjob {

// Microsecond time source the serving layer's admission control and cache
// TTLs are written against. Production code uses Real() (a monotonic
// steady_clock reading); tests inject a VirtualClock (common/virtual_clock.h)
// so deadline shedding and TTL expiry are deterministic — time moves only
// when the test says so.
//
// NowMicros must be monotone non-decreasing and safe to call from any
// thread. The epoch is arbitrary: only differences are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual int64_t NowMicros() const = 0;

  // Process-wide monotonic clock (steady_clock); never destroyed, so cached
  // pointers stay valid through shutdown like the metrics singletons.
  static const Clock* Real();
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_CLOCK_H_
