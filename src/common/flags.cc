#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace fairjob {

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (!StartsWith(token, "--")) {
      flags.positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    size_t eq = body.find('=');
    std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag '" + token + "'");
    }
    if (eq != std::string::npos) {
      flags.values_[name] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
      flags.values_[name] = args[i + 1];
      ++i;
    } else {
      flags.values_[name] = "";  // boolean switch
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<long> Flags::GetInt(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer");
  }
  return v;
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number");
  }
  return v;
}

}  // namespace fairjob
