#include "common/flags.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace fairjob {
namespace {

// Shared pre-checks for every numeric accessor, so all types agree on what
// a malformed value is. Zero is a value like any other — `--deadline_ms=0`
// and `--deadline_ms 0` must parse to 0, never be rejected or confused with
// "flag absent" — so the only rejections are structural: an empty value (a
// boolean switch queried as a number gets its own message, since `--x`
// followed by another flag silently parses as a switch) and surrounding
// whitespace (strtol/strtod would skip it on one side only, so spellings
// would round-trip inconsistently).
Status CheckNumericShape(const std::string& name, const std::string& value,
                         const char* type_name) {
  if (value.empty()) {
    return Status::InvalidArgument("flag --" + name +
                                   " has no value; pass --" + name + "=<" +
                                   type_name + ">");
  }
  if (std::isspace(static_cast<unsigned char>(value.front())) ||
      std::isspace(static_cast<unsigned char>(value.back()))) {
    return Status::InvalidArgument("flag --" + name +
                                   " has whitespace around its value");
  }
  return Status::OK();
}

}  // namespace

Result<Flags> Flags::Parse(const std::vector<std::string>& args) {
  Flags flags;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (!StartsWith(token, "--")) {
      flags.positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    size_t eq = body.find('=');
    std::string name = eq == std::string::npos ? body : body.substr(0, eq);
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag '" + token + "'");
    }
    if (eq != std::string::npos) {
      flags.values_[name] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
      flags.values_[name] = args[i + 1];
      ++i;
    } else {
      flags.values_[name] = "";  // boolean switch
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<long> Flags::GetInt(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  Status shape = CheckNumericShape(name, it->second, "int");
  if (!shape.ok()) return shape;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("flag --" + name +
                                   " overflows the integer range");
  }
  return v;
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  Status shape = CheckNumericShape(name, it->second, "number");
  if (!shape.ok()) return shape;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::InvalidArgument("flag --" + name +
                                   " overflows the double range");
  }
  return v;
}

}  // namespace fairjob
