#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace fairjob {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Buffer* Tracer::BufferForThisThread() {
  // The thread-local pointer is raw: buffers are owned by the tracer's list
  // and never destroyed (Reset only clears their contents), so a pointer
  // cached by a long-lived thread cannot dangle.
  thread_local Buffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    owned->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(owned);
    buffer = owned.get();
  }
  return buffer;
}

void Tracer::Record(const char* name, const char* category, char phase) {
  double ts = NowUs();
  Buffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(Event{name, category, phase, ts, buffer->tid});
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<Tracer::Event> Tracer::Snapshot() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Stable sort: equal timestamps keep their per-buffer order, which is the
  // recording order within a thread, preserving begin-before-end nesting.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  return events;
}

std::string Tracer::ToJson() const {
  std::vector<Event> events = Snapshot();
  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[64];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    json += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
    json += std::string("  {\"name\": \"") + e.name + "\", \"cat\": \"" +
            e.category + "\", \"ph\": \"" + e.phase + "\", \"ts\": " + buf +
            ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + "}";
  }
  json += events.empty() ? "]}\n" : "\n]}\n";
  return json;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToJson();
  out.close();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace fairjob
