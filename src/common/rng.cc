#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace fairjob {
namespace {

constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr uint64_t kDefaultStream = 0xda3e39cb94b95bdbULL;

}  // namespace

Rng::Rng(uint64_t seed) : state_(0), inc_((kDefaultStream << 1u) | 1u) {
  // Standard PCG32 seeding sequence.
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint32_t Rng::NextBelow(uint32_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (-n) % n;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  uint64_t child_seed = (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  return Rng(child_seed);
}

}  // namespace fairjob
