#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fairjob {
namespace internal {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

namespace {

// JSON number formatting: integers stay integral, everything else gets
// enough digits to round-trip reasonably without drowning the export.
std::string JsonNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::ResetForTesting() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) {
  if (!kObservabilityCompiledIn) return;
  if (!enabled_->load(std::memory_order_relaxed)) return;
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::vector<double> LatencyHistogram::LatencyBucketsUs() {
  return {1,    2,    5,    10,   20,   50,    100,   200,   500,
          1e3,  2e3,  5e3,  1e4,  2e4,  5e4,   1e5,   2e5,   5e5,
          1e6,  2e6,  5e6};
}

LatencyHistogram::LatencyHistogram(std::string name, std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : name_(std::move(name)), bounds_(std::move(bounds)), enabled_(enabled) {
  if (bounds_.empty()) bounds_ = LatencyBucketsUs();
  std::sort(bounds_.begin(), bounds_.end());
  shards_ = std::vector<Shard>(internal::kMetricShards);
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void LatencyHistogram::RecordImpl(double value) {
  size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard =
      shards_[internal::ThreadShardSlot() % internal::kMetricShards];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Aggregate() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < shard.buckets.size(); ++b) {
      snapshot.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snapshot.buckets) snapshot.count += c;
  return snapshot;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate within [lower, upper) of this bucket; the +inf bucket
      // reports its lower bound (no upper edge to interpolate toward).
      double lower = b == 0 ? 0.0 : bounds[b - 1];
      if (b >= bounds.size()) return lower;
      double upper = bounds[b];
      double fraction =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + fraction * (upper - lower);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void LatencyHistogram::ResetForTesting() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as ThreadPool::Shared(): instrumented leaked
  // singletons may write metrics while static destructors run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name() == name) return c.get();
  }
  counters_.push_back(
      std::unique_ptr<Counter>(new Counter(name, &enabled_)));
  return counters_.back().get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& g : gauges_) {
    if (g->name() == name) return g.get();
  }
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(name, &enabled_)));
  return gauges_.back().get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& h : histograms_) {
    if (h->name() == name) return h.get();
  }
  histograms_.push_back(std::unique_ptr<LatencyHistogram>(
      new LatencyHistogram(name, std::move(bounds), &enabled_)));
  return histograms_.back().get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->ResetForTesting();
  for (const auto& g : gauges_) g->ResetForTesting();
  for (const auto& h : histograms_) h->ResetForTesting();
}

std::string MetricsRegistry::ToJson() const {
  // Snapshot name/value pairs under the lock, then render sorted so the
  // export is deterministic regardless of registration order.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& c : counters_) counters.emplace_back(c->name(), c->Value());
    for (const auto& g : gauges_) gauges.emplace_back(g->name(), g->Value());
    for (const auto& h : histograms_) {
      histograms.emplace_back(h->name(), h->Aggregate());
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);

  std::string json = "{\n  \"enabled\": ";
  json += enabled() ? "true" : "false";
  json += ",\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "    \"" + counters[i].first +
            "\": " + std::to_string(counters[i].second);
  }
  json += counters.empty() ? "}" : "\n  }";
  json += ",\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    json += i == 0 ? "\n" : ",\n";
    json += "    \"" + gauges[i].first +
            "\": " + JsonNumber(gauges[i].second);
  }
  json += gauges.empty() ? "}" : "\n  }";
  json += ",\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const LatencyHistogram::Snapshot& s = histograms[i].second;
    json += i == 0 ? "\n" : ",\n";
    json += "    \"" + histograms[i].first + "\": {\"count\": " +
            std::to_string(s.count) + ", \"sum\": " + JsonNumber(s.sum) +
            ",\n      \"p50\": " + JsonNumber(s.Quantile(0.5)) +
            ", \"p90\": " + JsonNumber(s.Quantile(0.9)) +
            ", \"p99\": " + JsonNumber(s.Quantile(0.99)) +
            ",\n      \"buckets\": [";
    bool first_bucket = true;
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;  // sparse: empty buckets are implicit
      if (!first_bucket) json += ", ";
      first_bucket = false;
      std::string le =
          b < s.bounds.size() ? JsonNumber(s.bounds[b]) : "\"inf\"";
      json += "{\"le\": " + le +
              ", \"count\": " + std::to_string(s.buckets[b]) + "}";
    }
    json += "]}";
  }
  json += histograms.empty() ? "}" : "\n  }";
  json += "\n}\n";
  return json;
}

}  // namespace fairjob
