#include "common/virtual_clock.h"

namespace fairjob {

void VirtualClock::AdvanceSeconds(int64_t seconds) {
  if (seconds > 0) now_ += seconds;
}

void VirtualClock::AdvanceTo(int64_t t) {
  if (t > now_) now_ = t;
}

}  // namespace fairjob
