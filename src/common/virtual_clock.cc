#include "common/virtual_clock.h"

namespace fairjob {

void VirtualClock::AdvanceSeconds(int64_t seconds) {
  if (seconds > 0) AdvanceMicros(seconds * kMicrosPerSecond);
}

void VirtualClock::AdvanceMicros(int64_t micros) {
  if (micros > 0) now_micros_.fetch_add(micros, std::memory_order_acq_rel);
}

void VirtualClock::AdvanceTo(int64_t t_seconds) {
  AdvanceToMicros(t_seconds * kMicrosPerSecond);
}

void VirtualClock::AdvanceToMicros(int64_t t_micros) {
  int64_t current = now_micros_.load(std::memory_order_acquire);
  while (t_micros > current &&
         !now_micros_.compare_exchange_weak(current, t_micros,
                                            std::memory_order_acq_rel)) {
    // `current` reloaded by the failed CAS; loop re-checks monotonicity.
  }
}

}  // namespace fairjob
