#ifndef FAIRJOB_COMMON_VIRTUAL_CLOCK_H_
#define FAIRJOB_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace fairjob {

// A fully deterministic simulated clock (seconds since an arbitrary epoch).
// The crawler and user-study runner advance this clock instead of sleeping,
// so rate limiting, 12-minute re-query intervals and carry-over-effect decay
// are reproducible and instantaneous in tests.
class VirtualClock {
 public:
  explicit VirtualClock(int64_t start_seconds = 0) : now_(start_seconds) {}

  int64_t NowSeconds() const { return now_; }

  // Advances time; negative amounts are ignored (time never goes backwards).
  void AdvanceSeconds(int64_t seconds);

  // Advances to `t` if it lies in the future.
  void AdvanceTo(int64_t t);

 private:
  int64_t now_;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_VIRTUAL_CLOCK_H_
