#ifndef FAIRJOB_COMMON_VIRTUAL_CLOCK_H_
#define FAIRJOB_COMMON_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace fairjob {

// A fully deterministic simulated clock. The crawler and user-study runner
// advance this clock instead of sleeping, so rate limiting, 12-minute
// re-query intervals and carry-over-effect decay are reproducible and
// instantaneous in tests.
//
// Internally the clock counts microseconds (the resolution the serving
// layer's admission deadlines and cache TTLs are written in); the original
// seconds API is preserved on top of it. It implements the Clock interface
// so tests can hand it to QuantificationService and make deadline shedding
// deterministic. Reads and advances are atomic: load-harness tests advance
// the clock from one thread while service threads poll it.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_seconds = 0)
      : now_micros_(start_seconds * kMicrosPerSecond) {}

  int64_t NowSeconds() const { return NowMicros() / kMicrosPerSecond; }
  int64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }

  // Advances time; negative amounts are ignored (time never goes backwards).
  void AdvanceSeconds(int64_t seconds);
  void AdvanceMicros(int64_t micros);

  // Advances to `t` if it lies in the future.
  void AdvanceTo(int64_t t_seconds);
  void AdvanceToMicros(int64_t t_micros);

 private:
  static constexpr int64_t kMicrosPerSecond = 1'000'000;

  std::atomic<int64_t> now_micros_;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_VIRTUAL_CLOCK_H_
