#ifndef FAIRJOB_COMMON_METRICS_H_
#define FAIRJOB_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fairjob {

// Zero-dependency metrics for the serving/cube hot paths: named counters,
// gauges and fixed-bucket histograms owned by a MetricsRegistry, exported as
// a deterministic JSON document (see docs/observability.md for the schema
// and the metric-name inventory).
//
// Overhead model:
//  * Disabled (the default): every write is a single relaxed atomic bool
//    load — safe to leave instrumentation in the tightest loops.
//  * Enabled: counter/histogram writes go to one of a fixed set of
//    cache-line-padded shards chosen by a thread-local slot, so concurrent
//    writers never contend on a cache line (lock-free fast path). Reads
//    aggregate the shards, trading read cost for write scalability.
//  * Compiled out (-DFAIRJOB_DISABLE_OBSERVABILITY): writes are constant
//    no-ops the optimizer deletes entirely.
//
// Metric objects are created once via the registry and never destroyed
// while the registry lives, so hot paths may cache the returned pointers
// (e.g. in function-local statics).
#ifdef FAIRJOB_DISABLE_OBSERVABILITY
inline constexpr bool kObservabilityCompiledIn = false;
#else
inline constexpr bool kObservabilityCompiledIn = true;
#endif

namespace internal {

// Stable small index for the calling thread, used to pick a metric shard.
size_t ThreadShardSlot();

// One cache line per shard so concurrent writers do not false-share.
inline constexpr size_t kCacheLineBytes = 64;
inline constexpr size_t kMetricShards = 16;

}  // namespace internal

// Monotonically increasing count (tasks executed, accesses performed, ...).
class Counter {
 public:
  // Lock-free: adds to the calling thread's shard.
  void Add(uint64_t delta = 1) {
    if (!kObservabilityCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThreadShardSlot() % internal::kMetricShards]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }

  // Aggregates all shards. Concurrent Adds may or may not be visible.
  uint64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void ResetForTesting();

  struct alignas(internal::kCacheLineBytes) Shard {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  const std::atomic<bool>* enabled_;  // the owning registry's switch
  Shard shards_[internal::kMetricShards];
};

// Last-write-wins instantaneous value (queue depth, cells/sec of the most
// recent build, ...). Writes race benignly: some write wins.
class Gauge {
 public:
  void Set(double value) {
    if (!kObservabilityCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta);

  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  void ResetForTesting() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket distribution, built for latencies in microseconds but happy
// with any non-negative value. Bucket upper bounds are fixed at creation;
// values above the last bound land in an implicit +inf bucket. Like the
// Counter, writes touch only the calling thread's shard.
class LatencyHistogram {
 public:
  // Snapshot of the aggregated distribution (shards summed at call time).
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;     // finite upper bounds, ascending
    std::vector<uint64_t> buckets;  // bounds.size() + 1 entries (+inf last)

    // Linear-interpolated quantile estimate from the bucket counts;
    // q in [0, 1]. Returns 0 when the histogram is empty.
    double Quantile(double q) const;
  };

  void Record(double value) {
    if (!kObservabilityCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    RecordImpl(value);
  }

  Snapshot Aggregate() const;
  const std::string& name() const { return name_; }
  // Whether the owning registry currently accepts writes; lets RAII timers
  // skip the clock read entirely when metrics are off.
  bool recording() const {
    return kObservabilityCompiledIn &&
           enabled_->load(std::memory_order_relaxed);
  }

  // Default bounds for microsecond latencies: 1us .. 5s in a 1-2-5 ladder.
  static std::vector<double> LatencyBucketsUs();

 private:
  friend class MetricsRegistry;
  LatencyHistogram(std::string name, std::vector<double> bounds,
            const std::atomic<bool>* enabled);
  void RecordImpl(double value);
  void ResetForTesting();

  struct alignas(internal::kCacheLineBytes) Shard {
    std::vector<std::atomic<uint64_t>> buckets;  // sized once, then lock-free
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;
  const std::atomic<bool>* enabled_;
  std::vector<Shard> shards_;
};

// Owner of all metrics. Processes normally use the leaked Global() instance;
// tests may construct private registries. Metric creation takes a lock;
// lookups of an existing name return the same object, so callers cache the
// pointer rather than re-resolving per write.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry, created on first use and intentionally leaked so
  // instrumentation in leaked singletons (ThreadPool::Shared()) stays valid
  // during shutdown.
  static MetricsRegistry& Global();

  // All writes are dropped until SetEnabled(true); flipping the switch does
  // not clear previously recorded values.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Finds or creates; the returned pointer is stable for the registry's
  // lifetime. A histogram's bounds are fixed by its first creation; later
  // calls with different bounds return the existing instance.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  // Zeroes every metric (the metrics themselves survive, so cached pointers
  // stay valid). Racy against concurrent writers by design; meant for tests
  // and for benches separating a warm-up from a measured pass.
  void Reset();

  // Deterministic JSON export: names sorted, histograms with bucket counts
  // and estimated p50/p90/p99. Schema in docs/observability.md.
  std::string ToJson() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards the three vectors below
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_METRICS_H_
