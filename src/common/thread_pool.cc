#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/trace.h"

namespace fairjob {

// One ParallelFor call. Indices are claimed via `next`; `completed` counts
// claimed indices whose body (or failure skip) finished, so completion ==
// (completed == n). `workers` counts participating threads (submitter
// included) and enforces the per-call parallelism cap.
struct ThreadPool::Batch {
  size_t n = 0;
  size_t max_workers = 1;
  const std::function<Status(size_t)>* fn = nullptr;

  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<size_t> workers{0};
  std::atomic<bool> failed{false};

  std::mutex mu;  // guards first_error and the completion wait
  std::condition_variable done;
  Status first_error;
};

ThreadPool::ThreadPool(size_t num_threads) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  tasks_executed_metric_ = metrics.counter("threadpool.tasks_executed");
  batches_submitted_metric_ = metrics.counter("threadpool.batches_submitted");
  queue_depth_metric_ = metrics.gauge("threadpool.queue_depth");
  worker_wait_metric_ = metrics.histogram("threadpool.worker_wait_us");
  parallel_for_metric_ = metrics.histogram("threadpool.parallel_for_us");
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

void ThreadPool::RunBatch(Batch* batch) {
  size_t executed = 0;  // flushed to the metric once per participation
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    if (!batch->failed.load(std::memory_order_relaxed)) {
      ++executed;
      Status s = (*batch->fn)(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(batch->mu);
        if (batch->first_error.ok()) batch->first_error = std::move(s);
        batch->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->n) {
      // Lock/unlock pairs with the submitter's predicate check so the final
      // increment cannot slip between its check and its wait.
      { std::lock_guard<std::mutex> lock(batch->mu); }
      batch->done.notify_all();
    }
  }
  if (executed > 0) tasks_executed_metric_->Add(executed);
}

void ThreadPool::RemoveBatchLocked(const std::shared_ptr<Batch>& batch) {
  for (auto it = batches_.begin(); it != batches_.end(); ++it) {
    if (*it == batch) {
      batches_.erase(it);
      queue_depth_metric_->Set(static_cast<double>(batches_.size()));
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    std::shared_ptr<Batch> batch;
    for (const std::shared_ptr<Batch>& b : batches_) {
      if (b->next.load(std::memory_order_relaxed) < b->n &&
          b->workers.load(std::memory_order_relaxed) < b->max_workers) {
        batch = b;
        break;
      }
    }
    if (batch == nullptr) {
      // The wait itself is the interesting quantity: long waits mean the
      // pool is over-provisioned for the submitted batches.
      ScopedTimer wait_timer(worker_wait_metric_);
      wake_.wait(lock);
      continue;
    }
    batch->workers.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    RunBatch(batch.get());
    lock.lock();
    RemoveBatchLocked(batch);  // exhausted: stop other workers scanning it
  }
}

Status ThreadPool::ParallelFor(size_t n, size_t parallelism,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (parallelism <= 1 || n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (!s.ok()) {
        tasks_executed_metric_->Add(i + 1);
        return s;
      }
    }
    tasks_executed_metric_->Add(n);
    return Status::OK();
  }

  ScopedTimer batch_timer(parallel_for_metric_);
  batches_submitted_metric_->Add(1);
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->max_workers = parallelism;
  batch->fn = &fn;
  batch->workers.store(1, std::memory_order_relaxed);  // the calling thread
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batches_.push_back(batch);
    queue_depth_metric_->Set(static_cast<double>(batches_.size()));
  }
  wake_.notify_all();

  RunBatch(batch.get());
  std::unique_lock<std::mutex> done_lock(batch->mu);
  batch->done.wait(done_lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == batch->n;
  });
  Status result = batch->first_error;
  done_lock.unlock();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RemoveBatchLocked(batch);  // no-op when a worker already removed it
  }
  return result;
}

Status ThreadPool::ParallelForPairs(
    size_t n1, size_t n2, size_t parallelism,
    const std::function<Status(size_t, size_t)>& fn) {
  if (n1 == 0 || n2 == 0) return Status::OK();
  return ParallelFor(n1 * n2, parallelism,
                     [&](size_t index) { return fn(index / n2, index % n2); });
}

}  // namespace fairjob
