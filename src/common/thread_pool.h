#ifndef FAIRJOB_COMMON_THREAD_POOL_H_
#define FAIRJOB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace fairjob {

// A fixed-size pool of worker threads with a Status-propagating ParallelFor.
// Built for the cube-construction hot path: one pool is created once (or the
// process-wide Shared() pool is used) and reused across many submissions, so
// repeated builds — the incremental-refresh scenario — stop paying the
// thread-spawn cost of a fresh std::thread fan-out per call.
//
// Scheduling model: every ParallelFor registers one "batch" (an index range
// plus a body). The calling thread always participates in its own batch, and
// idle pool workers join batches up to each batch's parallelism cap. Indices
// are claimed from a shared atomic counter, so uneven per-index work
// self-balances. Because submitters drain their own batches, ParallelFor may
// be called from inside a pool task (nested parallelism) without deadlock:
// at worst the nested call runs serially on the submitting worker.
//
// Lifetime rules: the destructor joins all workers and requires that no
// ParallelFor call is still in flight. The Shared() pool is created on first
// use and intentionally never destroyed (see docs/performance.md).
class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 is allowed: every ParallelFor then runs
  // on its calling thread alone).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, n). At most `parallelism` threads work on
  // this call, counting the calling thread; parallelism <= 1 (or n <= 1, or
  // an empty pool) runs inline without touching the workers. The first
  // non-OK status wins: remaining unclaimed indices are skipped and that
  // status is returned. fn must only touch disjoint state per index.
  Status ParallelFor(size_t n, size_t parallelism,
                     const std::function<Status(size_t)>& fn);

  // Convenience: fn(i, j) over the row-major flattening of
  // [0, n1) × [0, n2).
  Status ParallelForPairs(size_t n1, size_t n2, size_t parallelism,
                          const std::function<Status(size_t, size_t)>& fn);

  // Process-wide pool sized to the hardware concurrency, created on first
  // use and leaked deliberately: joining threads from a static destructor
  // races with other teardown, and the workers are all idle-blocked at exit.
  static ThreadPool& Shared();

 private:
  struct Batch;

  // Worker side: block until a joinable batch (or shutdown) appears.
  void WorkerLoop();
  // Claims and runs indices of `batch` until it is exhausted or failed.
  void RunBatch(Batch* batch);
  void RemoveBatchLocked(const std::shared_ptr<Batch>& batch);

  std::vector<std::thread> threads_;
  std::mutex mutex_;                // guards batches_ / stop_
  std::condition_variable wake_;    // workers wait here for new batches
  std::deque<std::shared_ptr<Batch>> batches_;
  bool stop_ = false;

  // Observability (see docs/observability.md): all pools share the global
  // metric objects, cached here to keep the hot paths lookup-free.
  Counter* tasks_executed_metric_;      // threadpool.tasks_executed
  Counter* batches_submitted_metric_;   // threadpool.batches_submitted
  Gauge* queue_depth_metric_;           // threadpool.queue_depth
  LatencyHistogram* worker_wait_metric_;       // threadpool.worker_wait_us
  LatencyHistogram* parallel_for_metric_;      // threadpool.parallel_for_us
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_THREAD_POOL_H_
