#ifndef FAIRJOB_COMMON_STRING_UTIL_H_
#define FAIRJOB_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fairjob {

// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Formats `value` with `decimals` digits after the point ("0.457").
std::string FormatDouble(double value, int decimals);

// Pads or truncates `s` to exactly `width` columns (left-aligned).
std::string PadRight(std::string_view s, size_t width);

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_STRING_UTIL_H_
