#ifndef FAIRJOB_COMMON_RNG_H_
#define FAIRJOB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairjob {

// Deterministic, seedable pseudo-random generator (PCG32). All stochastic
// pieces of the simulators take an Rng so that crawls, user studies and
// benchmark tables are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  // Uniform 32-bit value.
  uint32_t NextU32();

  // Uniform in [0, n). Precondition: n > 0.
  uint32_t NextBelow(uint32_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller (cached second draw).
  double NextGaussian();

  // Gaussian with given mean / stddev.
  double NextGaussian(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Index drawn from unnormalized non-negative weights. Returns 0 when all
  // weights are zero. Precondition: !weights.empty().
  size_t NextCategorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(static_cast<uint32_t>(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; use to give each simulated
  // entity its own stream without coupling draw orders.
  Rng Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_RNG_H_
