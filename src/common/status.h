#ifndef FAIRJOB_COMMON_STATUS_H_
#define FAIRJOB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fairjob {

// Error taxonomy used across the library. Mirrors the usual database-library
// status vocabulary (cf. arrow::Status / rocksdb::Status): code + message,
// returned by value, never thrown.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  // Serving-layer overload taxonomy (docs/serving.md, "Load & overload"):
  // kUnavailable = rejected by admission control (bounded queue or follower
  // queue full — retry later), kDeadlineExceeded = shed because the request's
  // deadline passed before it could be computed. Both are returned *instead*
  // of an answer, never alongside a partial one.
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// A cheap value-type carrying success or a (code, message) error.
//
// Usage:
//   Status s = DoThing();
//   if (!s.ok()) return s;
class Status {
 public:
  // Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status (like absl::StatusOr).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 3; }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define FAIRJOB_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::fairjob::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

// Evaluates a Result-returning expression, propagating the error or binding
// the value to `lhs`.
#define FAIRJOB_ASSIGN_OR_RETURN(lhs, expr)      \
  auto FAIRJOB_CONCAT_(_res_, __LINE__) = (expr);               \
  if (!FAIRJOB_CONCAT_(_res_, __LINE__).ok())                   \
    return FAIRJOB_CONCAT_(_res_, __LINE__).status();           \
  lhs = std::move(FAIRJOB_CONCAT_(_res_, __LINE__)).value()

#define FAIRJOB_CONCAT_INNER_(a, b) a##b
#define FAIRJOB_CONCAT_(a, b) FAIRJOB_CONCAT_INNER_(a, b)

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_STATUS_H_
