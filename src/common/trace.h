#ifndef FAIRJOB_COMMON_TRACE_H_
#define FAIRJOB_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace fairjob {

// Scoped-span tracing that emits a Chrome trace_event JSON timeline
// (chrome://tracing / https://ui.perfetto.dev can open the output directly).
// Spans nest naturally: a TraceSpan constructed while another is alive on
// the same thread becomes its child in the viewer, because begin/end events
// are strictly LIFO per thread (RAII guarantees the balance).
//
// Like metrics, tracing is disabled by default: a span on a disabled tracer
// is one relaxed atomic load. Events are buffered per thread (one mutex per
// buffer, only ever contended by the exporting reader), so parallel cube
// builds trace without cross-thread contention.
class Tracer {
 public:
  // Structured view of one recorded event, exposed for tests and tools.
  struct Event {
    const char* name;      // static string supplied by the span
    const char* category;  // static string, groups spans in the viewer
    char phase;            // 'B' begin / 'E' end
    double ts_us;          // microseconds since tracer construction
    uint32_t tid;          // stable per-thread ordinal
  };

  // Process-wide tracer, created on first use and intentionally leaked
  // (same shutdown rationale as MetricsRegistry::Global()).
  static Tracer& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all buffered events (buffers themselves survive, threads keep
  // their registration). Meant for tests and multi-phase benches.
  void Reset();

  // All buffered events merged and sorted by timestamp, for structured
  // inspection without parsing JSON.
  std::vector<Event> Snapshot() const;

  // Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  // Every event carries pid/tid/ts/ph/name/cat; begin/end counts balance.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // Records one event now. `name` and `category` must point to storage that
  // outlives the tracer — string literals in practice. Called by TraceSpan;
  // rarely needed directly.
  void Record(const char* name, const char* category, char phase);

  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  struct Buffer {
    mutable std::mutex mutex;
    std::vector<Event> events;
    uint32_t tid = 0;
  };

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Buffer* BufferForThisThread();

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex buffers_mutex_;  // guards the buffer list itself
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

// RAII span: records a begin event on construction and the matching end
// event on destruction. If tracing is disabled at construction the span is
// inert (and stays inert even if tracing is enabled mid-scope, keeping the
// event stream balanced).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "fairjob")
      : name_(name), category_(category) {
    if (!kObservabilityCompiledIn) return;
    Tracer& tracer = Tracer::Global();
    if (!tracer.enabled()) return;
    active_ = true;
    tracer.Record(name_, category_, 'B');
  }
  ~TraceSpan() {
    if (active_) Tracer::Global().Record(name_, category_, 'E');
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_ = false;
};

// RAII timer feeding a latency histogram (microseconds). Inert when the
// histogram is null or metrics are disabled at construction, so call sites
// can unconditionally place one in a hot path.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram) {
    if (histogram == nullptr || !histogram->recording()) return;
    histogram_ = histogram;
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Record(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fairjob

#endif  // FAIRJOB_COMMON_TRACE_H_
