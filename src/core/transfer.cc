#include "core/transfer.h"

namespace fairjob {

Result<size_t> GroupUnfairnessRank(const FBox& box, const std::string& group) {
  FAIRJOB_ASSIGN_OR_RETURN(
      std::vector<FBox::NamedAnswer> all,
      box.TopK(Dimension::kGroup, box.cube().axis_size(Dimension::kGroup)));
  // Compare canonically: display names are order/case-insensitive.
  FAIRJOB_ASSIGN_OR_RETURN(GroupId wanted, box.space().FindByDisplayName(group));
  for (size_t i = 0; i < all.size(); ++i) {
    Result<GroupId> candidate = box.space().FindByDisplayName(all[i].name);
    if (candidate.ok() && *candidate == wanted) return i + 1;
  }
  return Status::NotFound("group '" + group +
                          "' has no defined unfairness on this site");
}

Result<bool> Holds(const FBox& box, const GroupRankHypothesis& hypothesis,
                   size_t slack) {
  if (hypothesis.k == 0) {
    return Status::InvalidArgument("hypothesis rank bound k must be positive");
  }
  FAIRJOB_ASSIGN_OR_RETURN(size_t rank,
                           GroupUnfairnessRank(box, hypothesis.group));
  return rank <= hypothesis.k + slack;
}

Result<bool> Holds(const FBox& box,
                   const SetComparisonHypothesis& hypothesis) {
  if (hypothesis.worse.empty() || hypothesis.better.empty()) {
    return Status::InvalidArgument("set hypothesis needs non-empty sets");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      ComparisonResult result,
      box.CompareSetsByName(Dimension::kGroup, hypothesis.worse,
                            hypothesis.better, Dimension::kQuery));
  return result.overall_d1 > result.overall_d2;
}

Result<std::vector<GroupRankHypothesis>> TopGroupHypotheses(const FBox& source,
                                                            size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<FBox::NamedAnswer> top,
                           source.TopK(Dimension::kGroup, k));
  std::vector<GroupRankHypothesis> hypotheses;
  hypotheses.reserve(top.size());
  for (const FBox::NamedAnswer& answer : top) {
    hypotheses.push_back(GroupRankHypothesis{answer.name, k});
  }
  return hypotheses;
}

Result<std::vector<HypothesisOutcome>> TransferTopGroups(const FBox& source,
                                                         const FBox& target,
                                                         size_t k,
                                                         size_t slack) {
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<GroupRankHypothesis> hypotheses,
                           TopGroupHypotheses(source, k));
  std::vector<HypothesisOutcome> outcomes;
  outcomes.reserve(hypotheses.size());
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    HypothesisOutcome outcome;
    outcome.hypothesis = hypotheses[i];
    outcome.source_rank = i + 1;
    Result<size_t> target_rank =
        GroupUnfairnessRank(target, hypotheses[i].group);
    if (target_rank.ok()) {
      outcome.target_rank = *target_rank;
      outcome.confirmed = *target_rank <= k + slack;
    } else if (target_rank.status().code() != StatusCode::kNotFound) {
      return target_rank.status();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace fairjob
