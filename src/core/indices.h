#ifndef FAIRJOB_CORE_INDICES_H_
#define FAIRJOB_CORE_INDICES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/unfairness_cube.h"

namespace fairjob {

// One (target position, unfairness) pair inside an inverted index.
struct ScoredEntry {
  int32_t pos;   // position on the target axis of the cube
  double value;  // d<...> for that position

  friend bool operator==(const ScoredEntry& a, const ScoredEntry& b) {
    return a.pos == b.pos && a.value == b.value;
  }
};

// A sorted inverted list with random access (Table 5 of the paper): entries
// descending by value for sorted access from the top (most unfair) and
// ascending access from the tail (least unfair), plus a dense
// position-indexed value column for Fagin-style random accesses. Axis
// positions are dense 0..N-1 cube coordinates, so the column is a flat
// vector (with a companion presence bitmap) and Find is a cache-friendly
// O(1) array load — no hashing anywhere on the query path.
class InvertedIndex {
 public:
  // Takes entries in any order; sorts descending by value (ties by pos for
  // determinism).
  explicit InvertedIndex(std::vector<ScoredEntry> entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // i-th entry in descending-value order.
  const ScoredEntry& entry(size_t i) const { return entries_[i]; }

  // Random access: value of `pos`, or nullopt when absent from this list.
  std::optional<double> Find(int32_t pos) const {
    if (pos < 0 || static_cast<size_t>(pos) >= present_.size() ||
        present_[static_cast<size_t>(pos)] == 0) {
      return std::nullopt;
    }
    return values_[static_cast<size_t>(pos)];
  }

  // Extent of the dense column: 1 + the largest position ever stored (0 for
  // an empty list). Every entry pos lies in [0, dense_size()).
  size_t dense_size() const { return values_.size(); }

  // Incremental maintenance (crawl refreshes): inserts or updates `pos`,
  // keeping the descending order and the dense column in sync. O(n).
  void Upsert(int32_t pos, double value);
  // Removes `pos` if present (the cell became undefined). O(n).
  void Remove(int32_t pos);

 private:
  std::vector<ScoredEntry> entries_;
  // Dense random-access column: values_[pos] is valid iff present_[pos].
  std::vector<double> values_;
  std::vector<uint8_t> present_;
};

// The three index families of Section 4.2, built once from a cube:
//  * group-based:    one list per (query, location) pair, over groups;
//  * query-based:    one list per (group, location) pair, over queries;
//  * location-based: one list per (group, query) pair, over locations.
// Missing cube cells simply do not appear in the lists.
class IndexSet {
 public:
  static IndexSet Build(const UnfairnessCube& cube);

  // The inverted lists to aggregate when ranking dimension `target`,
  // restricted to subsets of the two other axes (AxisSelector::All() = every
  // position). The "other" axes are always taken in ascending Dimension
  // order, e.g. target=kQuery -> (other1=group, other2=location).
  std::vector<const InvertedIndex*> ListsFor(Dimension target,
                                             const AxisSelector& other1,
                                             const AxisSelector& other2) const;

  // Single list access, mainly for tests: positions are along the two other
  // axes in ascending Dimension order.
  const InvertedIndex& ListAt(Dimension target, size_t other1_pos,
                              size_t other2_pos) const;

  size_t axis_size(Dimension d) const {
    return sizes_[static_cast<size_t>(d)];
  }

  // Re-syncs every inverted list touched by changes to the cube column at
  // (query_pos, location_pos) — i.e. after RefreshMarketplaceColumn updated
  // the group cells for one re-crawled (query, location):
  //  * the group-based list for that pair is rebuilt;
  //  * the query-based list of every (g, location_pos) gets its query entry
  //    upserted/removed;
  //  * the location-based list of every (g, query_pos) likewise.
  // The cube must be the one this set was built from (same axis sizes).
  void RefreshColumn(const UnfairnessCube& cube, size_t query_pos,
                     size_t location_pos);

 private:
  IndexSet() = default;

  // Sizes of the two non-target axes, ascending Dimension order.
  void OtherSizes(Dimension target, size_t* s1, size_t* s2) const;

  std::vector<InvertedIndex> family_[3];  // indexed by target Dimension
  size_t sizes_[3] = {0, 0, 0};
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_INDICES_H_
