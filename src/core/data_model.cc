#include "core/data_model.h"

#include <algorithm>
#include <unordered_set>

namespace fairjob {

int32_t Vocabulary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Result<int32_t> Vocabulary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("'" + std::string(name) + "' not in vocabulary");
  }
  return it->second;
}

Result<WorkerId> MarketplaceDataset::AddWorker(std::string_view name,
                                               Demographics demographics) {
  if (!schema_.IsValidDemographics(demographics)) {
    return Status::InvalidArgument("worker '" + std::string(name) +
                                   "' has invalid demographics");
  }
  if (workers_.Find(name).ok()) {
    return Status::AlreadyExists("worker '" + std::string(name) +
                                 "' already registered");
  }
  WorkerId id = workers_.GetOrAdd(name);
  demographics_.push_back(std::move(demographics));
  return id;
}

Status MarketplaceDataset::ValidateRanking(const MarketRanking& ranking) const {
  if (!ranking.scores.empty() &&
      ranking.scores.size() != ranking.workers.size()) {
    return Status::InvalidArgument(
        "scores length disagrees with worker list length");
  }
  std::unordered_set<WorkerId> seen;
  for (WorkerId w : ranking.workers) {
    if (w < 0 || static_cast<size_t>(w) >= demographics_.size()) {
      return Status::InvalidArgument("ranking references unknown worker id " +
                                     std::to_string(w));
    }
    if (!seen.insert(w).second) {
      return Status::InvalidArgument("ranking lists worker " +
                                     std::to_string(w) + " twice");
    }
  }
  return Status::OK();
}

Status MarketplaceDataset::SetRanking(QueryId q, LocationId l,
                                      MarketRanking ranking) {
  FAIRJOB_RETURN_IF_ERROR(ValidateRanking(ranking));
  rankings_[QueryLocation{q, l}] = std::move(ranking);
  return Status::OK();
}

const MarketRanking* MarketplaceDataset::GetRanking(QueryId q,
                                                    LocationId l) const {
  auto it = rankings_.find(QueryLocation{q, l});
  return it == rankings_.end() ? nullptr : &it->second;
}

std::vector<QueryLocation> MarketplaceDataset::RankedPairs() const {
  std::vector<QueryLocation> pairs;
  pairs.reserve(rankings_.size());
  for (const auto& [ql, ranking] : rankings_) pairs.push_back(ql);
  std::sort(pairs.begin(), pairs.end(),
            [](const QueryLocation& a, const QueryLocation& b) {
              if (a.query != b.query) return a.query < b.query;
              return a.location < b.location;
            });
  return pairs;
}

Result<UserId> SearchDataset::AddUser(std::string_view name,
                                      Demographics demographics) {
  if (!schema_.IsValidDemographics(demographics)) {
    return Status::InvalidArgument("user '" + std::string(name) +
                                   "' has invalid demographics");
  }
  if (users_.Find(name).ok()) {
    return Status::AlreadyExists("user '" + std::string(name) +
                                 "' already registered");
  }
  UserId id = users_.GetOrAdd(name);
  demographics_.push_back(std::move(demographics));
  return id;
}

namespace {

Status ValidateObservation(const SearchObservation& obs, size_t num_users) {
  if (obs.user < 0 || static_cast<size_t>(obs.user) >= num_users) {
    return Status::InvalidArgument("observation references unknown user id " +
                                   std::to_string(obs.user));
  }
  if (obs.results.empty()) {
    return Status::InvalidArgument("observation has an empty result list");
  }
  std::unordered_set<int32_t> seen;
  for (int32_t doc : obs.results) {
    if (!seen.insert(doc).second) {
      return Status::InvalidArgument("result list contains document " +
                                     std::to_string(doc) + " twice");
    }
  }
  return Status::OK();
}

}  // namespace

Status SearchDataset::AddObservation(QueryId q, LocationId l,
                                     SearchObservation obs) {
  FAIRJOB_RETURN_IF_ERROR(ValidateObservation(obs, demographics_.size()));
  observations_[QueryLocation{q, l}].push_back(std::move(obs));
  return Status::OK();
}

Status SearchDataset::ValidateObservations(
    const std::vector<SearchObservation>& observations) const {
  for (const SearchObservation& obs : observations) {
    FAIRJOB_RETURN_IF_ERROR(ValidateObservation(obs, demographics_.size()));
  }
  return Status::OK();
}

Status SearchDataset::SetObservations(
    QueryId q, LocationId l, std::vector<SearchObservation> observations) {
  FAIRJOB_RETURN_IF_ERROR(ValidateObservations(observations));
  if (observations.empty()) {
    observations_.erase(QueryLocation{q, l});
  } else {
    observations_[QueryLocation{q, l}] = std::move(observations);
  }
  return Status::OK();
}

const std::vector<SearchObservation>* SearchDataset::GetObservations(
    QueryId q, LocationId l) const {
  auto it = observations_.find(QueryLocation{q, l});
  return it == observations_.end() ? nullptr : &it->second;
}

std::vector<QueryLocation> SearchDataset::ObservedPairs() const {
  std::vector<QueryLocation> pairs;
  pairs.reserve(observations_.size());
  for (const auto& [ql, obs] : observations_) pairs.push_back(ql);
  std::sort(pairs.begin(), pairs.end(),
            [](const QueryLocation& a, const QueryLocation& b) {
              if (a.query != b.query) return a.query < b.query;
              return a.location < b.location;
            });
  return pairs;
}

}  // namespace fairjob
