#include "core/quantification.h"

#include "common/trace.h"

namespace fairjob {
namespace {

Status ValidateSelector(const AxisSelector& sel, size_t size,
                        const char* which) {
  for (size_t pos : sel.positions) {
    if (pos >= size) {
      return Status::InvalidArgument(std::string("selector '") + which +
                                     "' position " + std::to_string(pos) +
                                     " out of range");
    }
  }
  return Status::OK();
}

}  // namespace

void QuantificationOtherDims(Dimension target, Dimension* d1, Dimension* d2) {
  switch (target) {
    case Dimension::kGroup:
      *d1 = Dimension::kQuery;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kQuery:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kLocation:
    default:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kQuery;
      return;
  }
}

Status ValidateQuantificationRequest(const UnfairnessCube& cube,
                                     const QuantificationRequest& request) {
  Dimension d1;
  Dimension d2;
  QuantificationOtherDims(request.target, &d1, &d2);
  FAIRJOB_RETURN_IF_ERROR(
      ValidateSelector(request.agg1, cube.axis_size(d1), "agg1"));
  FAIRJOB_RETURN_IF_ERROR(
      ValidateSelector(request.agg2, cube.axis_size(d2), "agg2"));
  for (int32_t t : request.allowed_targets) {
    if (t < 0 || static_cast<size_t>(t) >= cube.axis_size(request.target)) {
      return Status::InvalidArgument("allowed target position " +
                                     std::to_string(t) + " out of range");
    }
  }
  return Status::OK();
}

Result<QuantificationResult> SolveQuantification(
    const UnfairnessCube& cube, const IndexSet& indices,
    const QuantificationRequest& request) {
  TraceSpan span("SolveQuantification", "quantification");
  FAIRJOB_RETURN_IF_ERROR(ValidateQuantificationRequest(cube, request));

  std::vector<const InvertedIndex*> lists =
      indices.ListsFor(request.target, request.agg1, request.agg2);

  TopKOptions options;
  options.k = request.k;
  options.direction = request.direction;
  options.missing = request.missing;
  options.allowed =
      request.allowed_targets.empty() ? nullptr : &request.allowed_targets;
  // The target axis size bounds every list position, so the dense engine can
  // size its flat accumulators and bitmaps without scanning the lists.
  options.universe_hint = cube.axis_size(request.target);

  QuantificationResult result;
  Result<std::vector<ScoredEntry>> top =
      RunTopK(request.algorithm, lists, options, &result.stats);
  if (!top.ok()) return top.status();

  result.answers.reserve(top->size());
  for (const ScoredEntry& e : *top) {
    result.answers.push_back(QuantificationAnswer{
        cube.axis_id(request.target, static_cast<size_t>(e.pos)), e.value});
  }
  return result;
}

}  // namespace fairjob
