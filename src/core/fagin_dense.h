#ifndef FAIRJOB_CORE_FAGIN_DENSE_H_
#define FAIRJOB_CORE_FAGIN_DENSE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fagin.h"
#include "core/indices.h"

// Internal helpers for the dense Fagin engine, shared by fagin.cc and
// fagin_family.cc. Axis positions are dense 0..N-1 cube coordinates, so all
// per-run candidate state lives in flat position-indexed arrays: the allowed
// filter is a byte bitmap, random accesses are O(1) column loads, and bulk
// candidate scoring is either a single pass over all list entries or a
// ThreadPool fan-out across position ranges.

namespace fairjob {
namespace fagin_internal {

// Candidate scoring switches to ThreadPool::Shared() when the selector
// fan-out (number of aggregated lists) and the target axis are both large
// enough that the fan-out amortizes the pool handoff.
constexpr size_t kParallelScoringMinLists = 64;
constexpr size_t kParallelScoringMinUniverse = 128;
// Positions handed to a pool worker per claimed index; chunks write to
// disjoint slices of the accumulator arrays.
constexpr size_t kParallelScoringChunk = 256;

// True when `a` should rank ahead of `b` for the requested direction.
inline bool Better(double a, double b, RankDirection dir) {
  return dir == RankDirection::kMostUnfair ? a > b : a < b;
}

// Final ordering of every engine's output: best-first for the direction,
// ties by ascending position. A total order, so the result is deterministic
// however the candidate set was produced.
inline void SortResults(std::vector<ScoredEntry>* out, RankDirection dir) {
  std::sort(out->begin(), out->end(),
            [dir](const ScoredEntry& a, const ScoredEntry& b) {
              if (a.value != b.value) return Better(a.value, b.value, dir);
              return a.pos < b.pos;
            });
}

// Request-shape validation shared by every engine (and replicated lane-wise
// by the batched executor, which must reject exactly the requests the
// per-request engines reject, with the same messages).
inline Status ValidateTopK(const std::vector<const InvertedIndex*>& lists,
                           size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lists.empty()) {
    return Status::InvalidArgument("top-k needs at least one inverted list");
  }
  for (const InvertedIndex* list : lists) {
    if (list == nullptr) {
      return Status::InvalidArgument("null inverted list");
    }
  }
  return Status::OK();
}

// Bound on the aggregate of any id never returned by sorted access so far —
// TA's termination bound. Pure in (lists, cursors, direction, missing), so
// the batched executor evaluates it per lane against shared cursors and
// gets the same bound the per-request run would.
inline double ThresholdBound(const std::vector<const InvertedIndex*>& lists,
                             const std::vector<size_t>& cursors,
                             const TopKOptions& opt) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  bool most = opt.direction == RankDirection::kMostUnfair;
  if (opt.missing == MissingCellPolicy::kSkip) {
    double bound = most ? -kInf : kInf;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;  // exhausted: no unseen ids
      size_t next = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      double frontier = lists[i]->entry(next).value;
      bound = most ? std::max(bound, frontier) : std::min(bound, frontier);
    }
    return bound;
  }
  // kZero: average of per-list bounds; a missing cell contributes exactly 0.
  double sum = 0.0;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (cursors[i] >= lists[i]->size()) continue;  // per-list bound is 0
    size_t next = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
    double frontier = lists[i]->entry(next).value;
    sum += most ? std::max(frontier, 0.0) : std::min(frontier, 0.0);
  }
  return sum / static_cast<double>(lists.size());
}

// Extent of the position space: every entry pos of every list lies in
// [0, universe). An understated hint is corrected from the lists.
inline size_t UniverseOf(const std::vector<const InvertedIndex*>& lists,
                         size_t hint) {
  size_t universe = hint;
  for (const InvertedIndex* list : lists) {
    universe = std::max(universe, list->dense_size());
  }
  return universe;
}

// Materializes TopKOptions::allowed into a position-indexed byte bitmap
// inside `scratch` (reused across runs by capacity). Returns nullptr when
// every position is allowed, so the hot loops keep a single branch.
inline const uint8_t* BuildAllowedBitmap(const std::vector<int32_t>* allowed,
                                         size_t universe,
                                         std::vector<uint8_t>* scratch) {
  if (allowed == nullptr) return nullptr;
  scratch->assign(universe, 0);
  for (int32_t pos : *allowed) {
    if (pos >= 0 && static_cast<size_t>(pos) < universe) {
      (*scratch)[static_cast<size_t>(pos)] = 1;
    }
  }
  return scratch->data();
}

// `pos` must lie in [0, universe) — true for every position read from a
// list entry.
inline bool IsAllowed(const uint8_t* allowed, int32_t pos) {
  return allowed == nullptr || allowed[static_cast<size_t>(pos)] != 0;
}

// Aggregate of `pos` across all lists under the missing-cell policy via
// dense random access; nullopt when the id appears in no list. Lists are
// visited in order, so the FP summation order matches the legacy engine.
inline std::optional<double> DenseAggregate(
    const std::vector<const InvertedIndex*>& lists, int32_t pos,
    MissingCellPolicy policy, FaginStats* stats) {
  double sum = 0.0;
  size_t present = 0;
  stats->random_accesses += lists.size();
  stats->dense_accesses += lists.size();
  for (const InvertedIndex* list : lists) {
    std::optional<double> v = list->Find(pos);
    if (v.has_value()) {
      sum += *v;
      ++present;
    }
  }
  if (present == 0) return std::nullopt;
  if (policy == MissingCellPolicy::kSkip) {
    return sum / static_cast<double>(present);
  }
  return sum / static_cast<double>(lists.size());
}

inline bool UseParallelScoring(size_t num_lists, size_t universe) {
  return num_lists >= kParallelScoringMinLists &&
         universe >= kParallelScoringMinUniverse;
}

// Scores every position with candidates[pos] != 0 and appends the results
// to `out` in ascending position order. Each candidate's aggregate iterates
// the lists in order — the same FP summation order as DenseAggregate — so
// results are bitwise-identical whether this runs serially or fanned out
// across position chunks on ThreadPool::Shared(). Workers write disjoint
// slices of the sum/count arrays, keeping the path TSan-clean. Counts one
// random (dense) access per list per candidate, like per-candidate random
// access would.
inline void ScoreCandidates(const std::vector<const InvertedIndex*>& lists,
                            size_t universe,
                            const std::vector<uint8_t>& candidates,
                            MissingCellPolicy policy, FaginStats* stats,
                            std::vector<ScoredEntry>* out) {
  const size_t num_lists = lists.size();
  auto score_range = [&](size_t lo, size_t hi, std::vector<double>& sums,
                         std::vector<uint32_t>& counts) {
    for (size_t pos = lo; pos < hi; ++pos) {
      if (candidates[pos] == 0) continue;
      double sum = 0.0;
      uint32_t present = 0;
      for (const InvertedIndex* list : lists) {
        std::optional<double> v = list->Find(static_cast<int32_t>(pos));
        if (v.has_value()) {
          sum += *v;
          ++present;
        }
      }
      sums[pos] = sum;
      counts[pos] = present;
    }
  };

  std::vector<double> sums(universe, 0.0);
  std::vector<uint32_t> counts(universe, 0);
  bool scored = false;
  if (UseParallelScoring(num_lists, universe)) {
    ThreadPool& pool = ThreadPool::Shared();
    size_t chunks =
        (universe + kParallelScoringChunk - 1) / kParallelScoringChunk;
    Status status =
        pool.ParallelFor(chunks, pool.num_threads() + 1, [&](size_t c) {
          size_t lo = c * kParallelScoringChunk;
          size_t hi = std::min(universe, lo + kParallelScoringChunk);
          score_range(lo, hi, sums, counts);
          return Status::OK();
        });
    scored = status.ok();
  }
  if (!scored) score_range(0, universe, sums, counts);

  for (size_t pos = 0; pos < universe; ++pos) {
    if (candidates[pos] == 0) continue;
    stats->random_accesses += num_lists;
    stats->dense_accesses += num_lists;
    if (counts[pos] == 0) continue;
    ++stats->ids_scored;
    double denom = policy == MissingCellPolicy::kSkip
                       ? static_cast<double>(counts[pos])
                       : static_cast<double>(num_lists);
    out->push_back(ScoredEntry{static_cast<int32_t>(pos), sums[pos] / denom});
  }
}

}  // namespace fagin_internal
}  // namespace fairjob

#endif  // FAIRJOB_CORE_FAGIN_DENSE_H_
