#ifndef FAIRJOB_CORE_FAGIN_H_
#define FAIRJOB_CORE_FAGIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/indices.h"

namespace fairjob {

// Direction of Problem 1: most-unfair returns the largest aggregates,
// least-unfair the smallest.
enum class RankDirection { kMostUnfair, kLeastUnfair };

// What a missing cube cell means when aggregating a target id across lists:
//  * kSkip: average over the lists where the id is present (the framework's
//    semantics: unobserved (q,l) pairs do not dilute a group's unfairness);
//  * kZero: treat missing as 0 (a full |Q|·|L| denominator, Algorithm 1's
//    literal behaviour on a complete cube).
// Both agree on complete cubes.
enum class MissingCellPolicy { kSkip, kZero };

// Instrumentation for the sorted/random access counts the Fagin family is
// judged by (the paper's Figure-9-style efficiency metrics).
struct FaginStats {
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  size_t ids_scored = 0;
  // Round-robin passes over the lists before termination — the early-stop
  // depth (a full scan of lists of length n reports n rounds).
  size_t rounds = 0;
  // Times the termination bound was evaluated against the k-th best value.
  size_t threshold_checks = 0;
  // Storage-engine attribution for the random accesses above: the dense
  // engine answers them from flat position-indexed columns
  // (dense_accesses == random_accesses), the legacy hash reference from
  // unordered_map probes (hash_accesses == random_accesses). Exported as
  // fagin.<algorithm>.{dense,hash}_accesses so dashboards can tell which
  // engine served a run without parsing names.
  size_t dense_accesses = 0;
  size_t hash_accesses = 0;
};

// Publishes one run's stats to the global MetricsRegistry under
// "fagin.<algorithm>.*" (runs, access counts, rounds, threshold checks and a
// latency histogram); no-op while metrics are disabled. Called by every
// member of the family; exposed so future serving layers can attribute runs
// to their own algorithm labels.
void RecordFaginMetrics(const char* algorithm, const FaginStats& stats,
                        double elapsed_us);

// Options for a top-k run.
struct TopKOptions {
  size_t k = 5;
  RankDirection direction = RankDirection::kMostUnfair;
  MissingCellPolicy missing = MissingCellPolicy::kSkip;
  // When non-null, only these target positions are eligible (e.g. "out of
  // Black Males, Asian Males and White Females, ..."); others are skipped.
  // Materialized once per run into a position-indexed bitmap.
  const std::vector<int32_t>* allowed = nullptr;
  // Size of the target axis when known (SolveQuantification passes the cube
  // axis size). 0 = derive from the lists' dense columns. The engines size
  // their flat accumulator arrays and bitmaps to
  // max(universe_hint, max list dense_size), so an understated hint is
  // harmless.
  size_t universe_hint = 0;
};

// Adaptation of Fagin's Threshold Algorithm (Algorithm 1): round-robin
// sorted access over the inverted lists, random access to complete each
// newly seen id's aggregate, and a per-policy threshold bound on unseen ids
// for early termination. With MissingCellPolicy::kSkip the bound is the
// max (resp. min) frontier, with kZero the mean of clamped frontiers; with
// kZero + kLeastUnfair no useful bound exists and the run degenerates to a
// scan (still correct).
//
// Returns up to k entries sorted by value (descending for most-unfair,
// ascending for least-unfair); ties are broken arbitrarily, as in classic TA.
// Ids absent from every list are never returned.
//
// Errors: InvalidArgument when k == 0 or `lists` is empty.
Result<std::vector<ScoredEntry>> FaginTopK(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);

// Baseline: scores every id appearing in any list. The dense engine does
// this in a single pass over all list entries into per-position sum /
// present-count accumulator arrays — O(total entries) instead of
// O(candidates × lists) random accesses — and, for large selector fan-outs
// (hundreds of lists), parallelizes candidate scoring across positions via
// ThreadPool::Shared(). Both paths keep the per-candidate list-iteration
// order, so aggregates are bitwise-identical to per-candidate random
// access. Same contract as FaginTopK; used for correctness cross-checks
// and as the comparison point in bench_fagin_perf.
Result<std::vector<ScoredEntry>> ScanTopK(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_FAGIN_H_
