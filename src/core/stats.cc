#include "core/stats.h"

#include <algorithm>
#include <cmath>

namespace fairjob {
namespace {

// Present-cell values for axis `dim` fixed at `pos`, with the other axes
// restricted; paired with their flattened (other1, other2) coordinate so
// comparisons can align cells.
struct Cell {
  size_t coordinate;
  double value;
};

void OtherDims(Dimension dim, Dimension* d1, Dimension* d2) {
  switch (dim) {
    case Dimension::kGroup:
      *d1 = Dimension::kQuery;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kQuery:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kLocation:
    default:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kQuery;
      return;
  }
}

std::vector<size_t> ResolvePositions(const AxisSelector& sel, size_t size) {
  if (!sel.all()) return sel.positions;
  std::vector<size_t> all(size);
  for (size_t i = 0; i < size; ++i) all[i] = i;
  return all;
}

Result<std::vector<Cell>> CollectCells(const UnfairnessCube& cube,
                                       Dimension dim, size_t pos,
                                       const AxisSelector& other1,
                                       const AxisSelector& other2) {
  if (pos >= cube.axis_size(dim)) {
    return Status::InvalidArgument("position out of range on axis '" +
                                   std::string(DimensionName(dim)) + "'");
  }
  Dimension d1 = Dimension::kQuery;
  Dimension d2 = Dimension::kLocation;
  OtherDims(dim, &d1, &d2);
  std::vector<size_t> p1s = ResolvePositions(other1, cube.axis_size(d1));
  std::vector<size_t> p2s = ResolvePositions(other2, cube.axis_size(d2));
  for (size_t p : p1s) {
    if (p >= cube.axis_size(d1)) {
      return Status::InvalidArgument("selector position out of range");
    }
  }
  for (size_t p : p2s) {
    if (p >= cube.axis_size(d2)) {
      return Status::InvalidArgument("selector position out of range");
    }
  }
  std::vector<Cell> cells;
  for (size_t i = 0; i < p1s.size(); ++i) {
    for (size_t j = 0; j < p2s.size(); ++j) {
      size_t coords[3];
      coords[static_cast<size_t>(dim)] = pos;
      coords[static_cast<size_t>(d1)] = p1s[i];
      coords[static_cast<size_t>(d2)] = p2s[j];
      std::optional<double> v = cube.Get(coords[0], coords[1], coords[2]);
      if (v.has_value()) {
        cells.push_back(Cell{i * p2s.size() + j, *v});
      }
    }
  }
  return cells;
}

}  // namespace

Result<ConfidenceInterval> BootstrapAggregate(
    const UnfairnessCube& cube, Dimension dim, size_t pos,
    const AxisSelector& other1, const AxisSelector& other2, size_t resamples,
    double confidence, Rng* rng) {
  if (resamples == 0) {
    return Status::InvalidArgument("need at least one bootstrap resample");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    return Status::InvalidArgument("confidence must lie in (0, 1)");
  }
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<Cell> cells,
                           CollectCells(cube, dim, pos, other1, other2));
  if (cells.empty()) {
    return Status::NotFound("aggregate undefined: no present cells");
  }

  double sum = 0.0;
  for (const Cell& c : cells) sum += c.value;
  ConfidenceInterval ci;
  ci.point = sum / static_cast<double>(cells.size());
  ci.cells = cells.size();
  ci.resamples = resamples;

  std::vector<double> means(resamples, 0.0);
  for (size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (size_t i = 0; i < cells.size(); ++i) {
      total += cells[rng->NextBelow(static_cast<uint32_t>(cells.size()))].value;
    }
    means[r] = total / static_cast<double>(cells.size());
  }
  std::sort(means.begin(), means.end());
  double alpha = (1.0 - confidence) / 2.0;
  auto quantile = [&](double q) {
    double idx = q * static_cast<double>(resamples - 1);
    size_t lo_idx = static_cast<size_t>(idx);
    size_t hi_idx = std::min(lo_idx + 1, resamples - 1);
    double frac = idx - static_cast<double>(lo_idx);
    return means[lo_idx] * (1.0 - frac) + means[hi_idx] * frac;
  };
  ci.lo = quantile(alpha);
  ci.hi = quantile(1.0 - alpha);
  return ci;
}

Result<PermutationTestResult> PairedPermutationTest(
    const UnfairnessCube& cube, Dimension compare_dim, size_t r1_pos,
    size_t r2_pos, const AxisSelector& other1, const AxisSelector& other2,
    size_t resamples, Rng* rng) {
  if (resamples == 0) {
    return Status::InvalidArgument("need at least one permutation resample");
  }
  if (r1_pos == r2_pos) {
    return Status::InvalidArgument("r1 and r2 must differ");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      std::vector<Cell> cells1,
      CollectCells(cube, compare_dim, r1_pos, other1, other2));
  FAIRJOB_ASSIGN_OR_RETURN(
      std::vector<Cell> cells2,
      CollectCells(cube, compare_dim, r2_pos, other1, other2));

  // Align on shared coordinates.
  std::vector<std::pair<double, double>> pairs;
  size_t j = 0;
  for (const Cell& c1 : cells1) {
    while (j < cells2.size() && cells2[j].coordinate < c1.coordinate) ++j;
    if (j < cells2.size() && cells2[j].coordinate == c1.coordinate) {
      pairs.emplace_back(c1.value, cells2[j].value);
    }
  }
  if (pairs.size() < 2) {
    return Status::FailedPrecondition(
        "paired permutation test needs at least 2 shared cells");
  }

  double observed = 0.0;
  for (const auto& [x, y] : pairs) observed += x - y;
  observed /= static_cast<double>(pairs.size());

  size_t at_least_as_extreme = 0;
  for (size_t r = 0; r < resamples; ++r) {
    double diff = 0.0;
    for (const auto& [x, y] : pairs) {
      double d = x - y;
      diff += rng->NextBernoulli(0.5) ? d : -d;
    }
    diff /= static_cast<double>(pairs.size());
    if (std::fabs(diff) >= std::fabs(observed) - 1e-15) ++at_least_as_extreme;
  }

  PermutationTestResult result;
  result.observed_diff = observed;
  // Add-one smoothing keeps the estimate away from an impossible p = 0.
  result.p_value = static_cast<double>(at_least_as_extreme + 1) /
                   static_cast<double>(resamples + 1);
  result.pairs = pairs.size();
  result.resamples = resamples;
  return result;
}


Result<SignificantComparisonResult> SolveComparisonWithSignificance(
    const UnfairnessCube& cube, const ComparisonRequest& request,
    size_t resamples, Rng* rng) {
  if (!request.r1_set.empty() || !request.r2_set.empty()) {
    return Status::InvalidArgument(
        "set comparisons have no per-cell pairing; use single positions");
  }
  FAIRJOB_ASSIGN_OR_RETURN(ComparisonResult base,
                           SolveComparison(cube, request));

  // Map (breakdown, aggregated) selectors onto the compare dimension's two
  // other axes in ascending order.
  Dimension d1 = Dimension::kQuery;
  Dimension d2 = Dimension::kLocation;
  OtherDims(request.compare_dim, &d1, &d2);
  const AxisSelector& sel1 =
      request.breakdown_dim == d1 ? request.breakdown : request.aggregated;
  const AxisSelector& sel2 =
      request.breakdown_dim == d2 ? request.breakdown : request.aggregated;

  SignificantComparisonResult result;
  result.base = base;

  Result<PermutationTestResult> overall =
      PairedPermutationTest(cube, request.compare_dim, request.r1_pos,
                            request.r2_pos, sel1, sel2, resamples, rng);
  if (overall.ok()) {
    result.overall_p_value = overall->p_value;
  } else if (overall.status().code() != StatusCode::kFailedPrecondition) {
    return overall.status();
  }

  for (const ComparisonRow& row : base.rows) {
    SignificantComparisonRow srow;
    srow.row = row;
    FAIRJOB_ASSIGN_OR_RETURN(
        size_t b_pos, cube.PosOf(request.breakdown_dim, row.breakdown_id));
    AxisSelector row_sel1 = request.breakdown_dim == d1
                                ? AxisSelector::Single(b_pos)
                                : sel1;
    AxisSelector row_sel2 = request.breakdown_dim == d2
                                ? AxisSelector::Single(b_pos)
                                : sel2;
    Result<PermutationTestResult> test =
        PairedPermutationTest(cube, request.compare_dim, request.r1_pos,
                              request.r2_pos, row_sel1, row_sel2, resamples,
                              rng);
    if (test.ok()) {
      srow.p_value = test->p_value;
      srow.pairs = test->pairs;
    } else if (test.status().code() != StatusCode::kFailedPrecondition) {
      return test.status();
    }
    result.rows.push_back(srow);
  }
  return result;
}

Result<std::vector<StableRankEntry>> RankWithStability(
    const UnfairnessCube& cube, Dimension dim, size_t k, size_t resamples,
    double confidence, Rng* rng) {
  if (k == 0) return Status::InvalidArgument("k must be positive");

  // Rank every axis position by its plain aggregate.
  std::vector<StableRankEntry> entries;
  for (size_t pos = 0; pos < cube.axis_size(dim); ++pos) {
    std::optional<double> avg = cube.AxisAverage(dim, pos);
    if (!avg.has_value()) continue;
    StableRankEntry entry;
    entry.id = cube.axis_id(dim, pos);
    entry.value = *avg;
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const StableRankEntry& a, const StableRankEntry& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.id < b.id;
            });
  if (entries.size() > k) entries.resize(k);

  // Attach bootstrap CIs and separation flags.
  for (StableRankEntry& entry : entries) {
    FAIRJOB_ASSIGN_OR_RETURN(size_t pos, cube.PosOf(dim, entry.id));
    FAIRJOB_ASSIGN_OR_RETURN(
        entry.ci, BootstrapAggregate(cube, dim, pos, {}, {}, resamples,
                                     confidence, rng));
  }
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    entries[i].separated_from_next = entries[i].ci.lo > entries[i + 1].ci.hi;
  }
  return entries;
}

}  // namespace fairjob