#include "core/indices.h"

#include <algorithm>
#include <cassert>

namespace fairjob {
namespace {

// The two non-target dimensions in ascending enum order.
void OtherDims(Dimension target, Dimension* d1, Dimension* d2) {
  switch (target) {
    case Dimension::kGroup:
      *d1 = Dimension::kQuery;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kQuery:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kLocation;
      return;
    case Dimension::kLocation:
      *d1 = Dimension::kGroup;
      *d2 = Dimension::kQuery;
      return;
  }
  assert(false);
}

std::vector<size_t> ResolvePositions(const AxisSelector& sel, size_t size) {
  if (!sel.all()) return sel.positions;
  std::vector<size_t> all(size);
  for (size_t i = 0; i < size; ++i) all[i] = i;
  return all;
}

}  // namespace

InvertedIndex::InvertedIndex(std::vector<ScoredEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ScoredEntry& a, const ScoredEntry& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.pos < b.pos;
            });
  int32_t max_pos = -1;
  for (const ScoredEntry& e : entries_) max_pos = std::max(max_pos, e.pos);
  values_.assign(static_cast<size_t>(max_pos + 1), 0.0);
  present_.assign(static_cast<size_t>(max_pos + 1), 0);
  // On duplicate positions the first (highest-value) entry wins, matching
  // the pre-dense hash map's emplace semantics.
  for (const ScoredEntry& e : entries_) {
    size_t pos = static_cast<size_t>(e.pos);
    if (present_[pos] == 0) {
      present_[pos] = 1;
      values_[pos] = e.value;
    }
  }
}

void InvertedIndex::Upsert(int32_t pos, double value) {
  std::optional<double> existing = Find(pos);
  if (existing.has_value()) {
    if (*existing == value) return;
    Remove(pos);
  }
  if (static_cast<size_t>(pos) >= values_.size()) {
    values_.resize(static_cast<size_t>(pos) + 1, 0.0);
    present_.resize(static_cast<size_t>(pos) + 1, 0);
  }
  values_[static_cast<size_t>(pos)] = value;
  present_[static_cast<size_t>(pos)] = 1;
  ScoredEntry entry{pos, value};
  auto insert_at = std::lower_bound(
      entries_.begin(), entries_.end(), entry,
      [](const ScoredEntry& a, const ScoredEntry& b) {
        if (a.value != b.value) return a.value > b.value;
        return a.pos < b.pos;
      });
  entries_.insert(insert_at, entry);
}

void InvertedIndex::Remove(int32_t pos) {
  if (pos < 0 || static_cast<size_t>(pos) >= present_.size() ||
      present_[static_cast<size_t>(pos)] == 0) {
    return;
  }
  present_[static_cast<size_t>(pos)] = 0;
  values_[static_cast<size_t>(pos)] = 0.0;
  for (auto entry = entries_.begin(); entry != entries_.end(); ++entry) {
    if (entry->pos == pos) {
      entries_.erase(entry);
      return;
    }
  }
}

void IndexSet::OtherSizes(Dimension target, size_t* s1, size_t* s2) const {
  Dimension d1 = Dimension::kQuery;
  Dimension d2 = Dimension::kLocation;
  OtherDims(target, &d1, &d2);
  *s1 = sizes_[static_cast<size_t>(d1)];
  *s2 = sizes_[static_cast<size_t>(d2)];
}

IndexSet IndexSet::Build(const UnfairnessCube& cube) {
  IndexSet set;
  set.sizes_[0] = cube.axis_size(Dimension::kGroup);
  set.sizes_[1] = cube.axis_size(Dimension::kQuery);
  set.sizes_[2] = cube.axis_size(Dimension::kLocation);

  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    Dimension d1 = Dimension::kQuery;
    Dimension d2 = Dimension::kLocation;
    OtherDims(target, &d1, &d2);
    size_t n1 = set.sizes_[static_cast<size_t>(d1)];
    size_t n2 = set.sizes_[static_cast<size_t>(d2)];
    size_t nt = set.sizes_[static_cast<size_t>(target)];

    auto& family = set.family_[static_cast<size_t>(target)];
    family.reserve(n1 * n2);
    for (size_t p1 = 0; p1 < n1; ++p1) {
      for (size_t p2 = 0; p2 < n2; ++p2) {
        std::vector<ScoredEntry> entries;
        for (size_t t = 0; t < nt; ++t) {
          // Map (target, other1, other2) back to (g, q, l).
          size_t coords[3];
          coords[static_cast<size_t>(target)] = t;
          coords[static_cast<size_t>(d1)] = p1;
          coords[static_cast<size_t>(d2)] = p2;
          std::optional<double> v =
              cube.Get(coords[0], coords[1], coords[2]);
          if (v.has_value()) {
            entries.push_back(ScoredEntry{static_cast<int32_t>(t), *v});
          }
        }
        family.emplace_back(std::move(entries));
      }
    }
  }
  return set;
}

void IndexSet::RefreshColumn(const UnfairnessCube& cube, size_t query_pos,
                             size_t location_pos) {
  size_t num_groups = sizes_[0];
  size_t num_queries = sizes_[1];
  size_t num_locations = sizes_[2];

  // Group-based family: the list for (query_pos, location_pos), rebuilt.
  {
    std::vector<ScoredEntry> entries;
    for (size_t g = 0; g < num_groups; ++g) {
      std::optional<double> v = cube.Get(g, query_pos, location_pos);
      if (v.has_value()) {
        entries.push_back(ScoredEntry{static_cast<int32_t>(g), *v});
      }
    }
    family_[static_cast<size_t>(Dimension::kGroup)]
           [query_pos * num_locations + location_pos] =
               InvertedIndex(std::move(entries));
  }

  // Query-based family: per group, the (g, location_pos) list's entry for
  // query_pos. Location-based family: per group, the (g, query_pos) list's
  // entry for location_pos.
  for (size_t g = 0; g < num_groups; ++g) {
    std::optional<double> v = cube.Get(g, query_pos, location_pos);
    InvertedIndex& query_list =
        family_[static_cast<size_t>(Dimension::kQuery)]
               [g * num_locations + location_pos];
    InvertedIndex& location_list =
        family_[static_cast<size_t>(Dimension::kLocation)]
               [g * num_queries + query_pos];
    if (v.has_value()) {
      query_list.Upsert(static_cast<int32_t>(query_pos), *v);
      location_list.Upsert(static_cast<int32_t>(location_pos), *v);
    } else {
      query_list.Remove(static_cast<int32_t>(query_pos));
      location_list.Remove(static_cast<int32_t>(location_pos));
    }
  }
}

std::vector<const InvertedIndex*> IndexSet::ListsFor(
    Dimension target, const AxisSelector& other1,
    const AxisSelector& other2) const {
  size_t n1;
  size_t n2;
  OtherSizes(target, &n1, &n2);
  std::vector<size_t> p1s = ResolvePositions(other1, n1);
  std::vector<size_t> p2s = ResolvePositions(other2, n2);
  const auto& family = family_[static_cast<size_t>(target)];
  std::vector<const InvertedIndex*> lists;
  lists.reserve(p1s.size() * p2s.size());
  for (size_t p1 : p1s) {
    for (size_t p2 : p2s) {
      lists.push_back(&family[p1 * n2 + p2]);
    }
  }
  return lists;
}

const InvertedIndex& IndexSet::ListAt(Dimension target, size_t other1_pos,
                                      size_t other2_pos) const {
  size_t n1;
  size_t n2;
  OtherSizes(target, &n1, &n2);
  (void)n1;
  return family_[static_cast<size_t>(target)][other1_pos * n2 + other2_pos];
}

}  // namespace fairjob
