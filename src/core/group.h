#ifndef FAIRJOB_CORE_GROUP_H_
#define FAIRJOB_CORE_GROUP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/attribute_schema.h"

namespace fairjob {

// A group label: a conjunction of predicates `attribute = value` over a
// non-empty subset of the protected attributes (Section 3.1 of the paper).
// Example: (ethnicity = Black) ∧ (gender = Female).
//
// Predicates are kept sorted by attribute id, giving labels a canonical form
// usable as map keys.
class GroupLabel {
 public:
  using Predicate = std::pair<AttributeId, ValueId>;

  // Builds a label from predicates (any order). Errors: InvalidArgument on an
  // empty predicate list or a repeated attribute.
  static Result<GroupLabel> Make(std::vector<Predicate> predicates);

  // Parses the ToString form back into a label: "attribute=value"
  // conjunctions joined by "∧", "&" or "&&" (whitespace-tolerant), e.g.
  // "ethnicity=Black ∧ gender=Female" or "gender=Female & ethnicity=Black".
  // Errors: InvalidArgument on syntax errors; NotFound for unknown
  // attributes/values.
  static Result<GroupLabel> Parse(std::string_view text,
                                  const AttributeSchema& schema);

  const std::vector<Predicate>& predicates() const { return predicates_; }
  size_t size() const { return predicates_.size(); }

  // A(g): the attributes the label constrains, ascending.
  std::vector<AttributeId> Attributes() const;

  bool HasAttribute(AttributeId a) const;

  // Value assigned to `a`, or an error if the label does not constrain `a`.
  Result<ValueId> ValueOf(AttributeId a) const;

  // Copy of this label with attribute `a` set to `v` (replacing any existing
  // predicate on `a`).
  GroupLabel WithValue(AttributeId a, ValueId v) const;

  // True if the individual's full demographic assignment satisfies every
  // predicate.
  bool Matches(const Demographics& d) const;

  // "ethnicity=Black ∧ gender=Female".
  std::string ToString(const AttributeSchema& schema) const;

  // "Black Female": value names joined in attribute order, the paper's
  // table row style.
  std::string DisplayName(const AttributeSchema& schema) const;

  friend bool operator==(const GroupLabel& a, const GroupLabel& b) {
    return a.predicates_ == b.predicates_;
  }

  struct Hash {
    size_t operator()(const GroupLabel& g) const;
  };

 private:
  explicit GroupLabel(std::vector<Predicate> sorted)
      : predicates_(std::move(sorted)) {}

  std::vector<Predicate> predicates_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_GROUP_H_
