#ifndef FAIRJOB_CORE_FBOX_H_
#define FAIRJOB_CORE_FBOX_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/comparison.h"
#include "core/quantification.h"

namespace fairjob {

// The "F-Box" of the paper's experiment flow (Figures 6 and 9): wraps a
// dataset, evaluates the chosen unfairness measure into a cube, builds the
// three inverted-index families, and answers quantification / comparison
// requests — with string-based lookups so callers can speak in terms of
// "Asian Female", "Handyman" or "Birmingham, UK".
//
// The dataset and group space are borrowed and must outlive the FBox.
class FBox {
 public:
  struct BuildOptions {
    MeasureOptions measure;
    CubeAxes axes;  // empty axes = full universes
    // Threads of the shared ThreadPool used to evaluate the cube (1 =
    // serial; results bitwise-identical — see docs/performance.md).
    size_t parallelism = 1;
  };

  static Result<FBox> ForMarketplace(const MarketplaceDataset* data,
                                     const GroupSpace* space,
                                     MarketMeasure measure,
                                     const BuildOptions& options);
  static Result<FBox> ForMarketplace(const MarketplaceDataset* data,
                                     const GroupSpace* space,
                                     MarketMeasure measure) {
    return ForMarketplace(data, space, measure, BuildOptions());
  }

  static Result<FBox> ForSearch(const SearchDataset* data,
                                const GroupSpace* space, SearchMeasure measure,
                                const BuildOptions& options);
  static Result<FBox> ForSearch(const SearchDataset* data,
                                const GroupSpace* space,
                                SearchMeasure measure) {
    return ForSearch(data, space, measure, BuildOptions());
  }

  const UnfairnessCube& cube() const { return cube_; }
  const IndexSet& indices() const { return indices_; }
  const GroupSpace& space() const { return *space_; }

  // --- name resolution -----------------------------------------------------

  // Cube axis position of a group display name ("Asian Female"), a query
  // name, or a location name. Errors: NotFound.
  Result<size_t> PosOf(Dimension d, std::string_view name) const;
  Result<std::vector<size_t>> PositionsOf(
      Dimension d, const std::vector<std::string>& names) const;

  // Human-readable name of a cube axis id.
  std::string NameOf(Dimension d, int32_t id) const;

  // --- problems ------------------------------------------------------------

  Result<QuantificationResult> Quantify(
      const QuantificationRequest& request) const;

  Result<ComparisonResult> Compare(const ComparisonRequest& request) const;

  // Convenience: named top-k along a dimension over everything else.
  struct NamedAnswer {
    std::string name;
    double value;
  };
  Result<std::vector<NamedAnswer>> TopK(
      Dimension target, size_t k,
      RankDirection direction = RankDirection::kMostUnfair) const;

  // Convenience: full Problem 2 by names, e.g.
  //   CompareByName(kGroup, "Male", "Female", kLocation).
  Result<ComparisonResult> CompareByName(
      Dimension compare_dim, std::string_view r1, std::string_view r2,
      Dimension breakdown_dim, const AxisSelector& breakdown = {},
      const AxisSelector& aggregated = {}) const;

  // Set comparison (d<G,·,·> form), e.g.
  //   CompareSetsByName(kGroup, {"Asian Male", "Black Male", "White Male"},
  //                     {"Asian Female", ...}, kLocation).
  Result<ComparisonResult> CompareSetsByName(
      Dimension compare_dim, const std::vector<std::string>& r1,
      const std::vector<std::string>& r2, Dimension breakdown_dim,
      const AxisSelector& breakdown = {},
      const AxisSelector& aggregated = {}) const;

 private:
  FBox(const GroupSpace* space, const Vocabulary* queries,
       const Vocabulary* locations, UnfairnessCube cube)
      : space_(space),
        queries_(queries),
        locations_(locations),
        cube_(std::move(cube)),
        indices_(IndexSet::Build(cube_)) {}

  const GroupSpace* space_;
  const Vocabulary* queries_;
  const Vocabulary* locations_;
  UnfairnessCube cube_;
  IndexSet indices_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_FBOX_H_
