#ifndef FAIRJOB_CORE_TRANSFER_H_
#define FAIRJOB_CORE_TRANSFER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/fbox.h"

namespace fairjob {

// Cross-site hypothesis transfer — the paper's §6 workflow made concrete:
// "Our framework can be used to generate hypotheses and verify them across
// sites. That is what we did from TaskRabbit to Google job search."
//
// Hypotheses are phrased in *names* (group display names, set names), which
// is what transfers between sites; cube ids and positions do not.

// "Group <group> is among the <k> most unfairly treated groups."
struct GroupRankHypothesis {
  std::string group;
  size_t k = 0;
};

// "The <worse> cells are treated less fairly than the <better> cells."
struct SetComparisonHypothesis {
  std::vector<std::string> worse;
  std::vector<std::string> better;
};

// 1-based rank of `group` in the box's most-unfair group ordering.
// Errors: NotFound when the group's aggregate is undefined on this box.
Result<size_t> GroupUnfairnessRank(const FBox& box, const std::string& group);

// Whether the hypothesis holds on `box`; `slack` widens the accepted rank
// bound to k + slack (site-to-site rankings rarely match position-exact).
Result<bool> Holds(const FBox& box, const GroupRankHypothesis& hypothesis,
                   size_t slack = 0);
Result<bool> Holds(const FBox& box, const SetComparisonHypothesis& hypothesis);

// Generates top-k group hypotheses from a source site's quantification.
Result<std::vector<GroupRankHypothesis>> TopGroupHypotheses(const FBox& source,
                                                            size_t k);

struct HypothesisOutcome {
  GroupRankHypothesis hypothesis;
  size_t source_rank = 0;  // 1-based
  size_t target_rank = 0;
  bool confirmed = false;
};

// The full §6 loop: quantify the source's top-k groups, then check each
// hypothesis on the target (within `slack`). Groups undefined on the target
// are reported with target_rank = 0 and confirmed = false.
Result<std::vector<HypothesisOutcome>> TransferTopGroups(const FBox& source,
                                                         const FBox& target,
                                                         size_t k,
                                                         size_t slack = 0);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_TRANSFER_H_
