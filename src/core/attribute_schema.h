#ifndef FAIRJOB_CORE_ATTRIBUTE_SCHEMA_H_
#define FAIRJOB_CORE_ATTRIBUTE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fairjob {

// Dense identifiers for protected attributes and their values.
using AttributeId = int32_t;
using ValueId = int32_t;

// A full demographic assignment: one ValueId per attribute, indexed by
// AttributeId. Every individual (worker / search user) carries one.
using Demographics = std::vector<ValueId>;

// The catalogue of protected attributes (e.g. gender, ethnicity) and their
// categorical domains. Append-only; ids are dense and stable.
class AttributeSchema {
 public:
  AttributeSchema() = default;

  // Registers an attribute with its value domain. Errors: InvalidArgument on
  // empty/duplicate names or an empty/duplicated value domain.
  Result<AttributeId> AddAttribute(std::string name,
                                   std::vector<std::string> values);

  size_t num_attributes() const { return attributes_.size(); }
  const std::string& attribute_name(AttributeId a) const {
    return attributes_[static_cast<size_t>(a)].name;
  }
  size_t num_values(AttributeId a) const {
    return attributes_[static_cast<size_t>(a)].values.size();
  }
  const std::string& value_name(AttributeId a, ValueId v) const {
    return attributes_[static_cast<size_t>(a)].values[static_cast<size_t>(v)];
  }

  // Case-sensitive lookups. Errors: NotFound.
  Result<AttributeId> FindAttribute(std::string_view name) const;
  Result<ValueId> FindValue(AttributeId a, std::string_view value) const;

  // True if `d` assigns a valid value to every attribute.
  bool IsValidDemographics(const Demographics& d) const;

 private:
  struct Attribute {
    std::string name;
    std::vector<std::string> values;
  };
  std::vector<Attribute> attributes_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_ATTRIBUTE_SCHEMA_H_
