#include "core/attribute_schema.h"

#include <unordered_set>

namespace fairjob {

Result<AttributeId> AttributeSchema::AddAttribute(
    std::string name, std::vector<std::string> values) {
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must be non-empty");
  }
  for (const Attribute& a : attributes_) {
    if (a.name == name) {
      return Status::AlreadyExists("attribute '" + name + "' already registered");
    }
  }
  if (values.empty()) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' needs a non-empty value domain");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& v : values) {
    if (v.empty()) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' has an empty value name");
    }
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' has duplicate value '" + v + "'");
    }
  }
  attributes_.push_back(Attribute{std::move(name), std::move(values)});
  return static_cast<AttributeId>(attributes_.size() - 1);
}

Result<AttributeId> AttributeSchema::FindAttribute(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<AttributeId>(i);
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

Result<ValueId> AttributeSchema::FindValue(AttributeId a,
                                           std::string_view value) const {
  if (a < 0 || static_cast<size_t>(a) >= attributes_.size()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  const Attribute& attr = attributes_[static_cast<size_t>(a)];
  for (size_t i = 0; i < attr.values.size(); ++i) {
    if (attr.values[i] == value) return static_cast<ValueId>(i);
  }
  return Status::NotFound("attribute '" + attr.name + "' has no value '" +
                          std::string(value) + "'");
}

bool AttributeSchema::IsValidDemographics(const Demographics& d) const {
  if (d.size() != attributes_.size()) return false;
  for (size_t a = 0; a < d.size(); ++a) {
    if (d[a] < 0 ||
        static_cast<size_t>(d[a]) >= attributes_[a].values.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace fairjob
