#ifndef FAIRJOB_CORE_FAGIN_REFERENCE_H_
#define FAIRJOB_CORE_FAGIN_REFERENCE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/fagin.h"
#include "core/fagin_family.h"

namespace fairjob {

// The pre-dense Fagin engine, kept verbatim as an independent reference:
// random access is an std::unordered_map probe per list, the allowed filter
// is a per-run unordered_set, and candidate bookkeeping lives in hash
// tables. tests/fagin_dense_test.cc proves the dense engine returns
// bitwise-identical top-k answers with identical access-count semantics,
// and bench_fagin_perf's --dense_compare mode enforces the dense speedup
// against this engine. Not wired into any serving path.
//
// Runs publish metrics under "fagin.ref_<algorithm>.*" and count their
// random accesses in FaginStats::hash_accesses (the dense engine's
// dense_accesses counterpart).

// Hash-based random-access view over an InvertedIndex, exactly the map the
// pre-dense InvertedIndex carried. Build once, run many times.
class HashedListView {
 public:
  explicit HashedListView(const InvertedIndex* list);

  const InvertedIndex& list() const { return *list_; }
  size_t size() const { return list_->size(); }
  const ScoredEntry& entry(size_t i) const { return list_->entry(i); }
  std::optional<double> Find(int32_t pos) const;

 private:
  const InvertedIndex* list_;
  std::unordered_map<int32_t, double> by_pos_;
};

// One view per list, in order. Lists must be non-null.
std::vector<HashedListView> BuildHashedViews(
    const std::vector<const InvertedIndex*>& lists);

// Reference counterparts of FaginTopK / FaginFA / FaginNRA / ScanTopK.
// Contracts (and error cases) match the dense engine exactly;
// TopKOptions::universe_hint is ignored.
Result<std::vector<ScoredEntry>> ReferenceFaginTopK(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);
Result<std::vector<ScoredEntry>> ReferenceFaginFA(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);
Result<std::vector<ScoredEntry>> ReferenceFaginNRA(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);
Result<std::vector<ScoredEntry>> ReferenceScanTopK(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);

// Dispatches like RunTopK.
Result<std::vector<ScoredEntry>> ReferenceRunTopK(
    TopKAlgorithm algorithm, const std::vector<HashedListView>& lists,
    const TopKOptions& options, FaginStats* stats = nullptr);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_FAGIN_REFERENCE_H_
