#include "core/fagin.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/trace.h"
#include "core/fagin_dense.h"
#include "core/fagin_run_metrics.h"

namespace fairjob {
namespace {

using fagin_internal::Better;
using fagin_internal::BuildAllowedBitmap;
using fagin_internal::DenseAggregate;
using fagin_internal::IsAllowed;
using fagin_internal::MeteredRun;
using fagin_internal::ScoreCandidates;
using fagin_internal::SortResults;
using fagin_internal::ThresholdBound;
using fagin_internal::UniverseOf;
using fagin_internal::UseParallelScoring;
using fagin_internal::ValidateTopK;

}  // namespace

void RecordFaginMetrics(const char* algorithm, const FaginStats& stats,
                        double elapsed_us) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  if (!metrics.enabled()) return;
  std::string prefix = std::string("fagin.") + algorithm;
  metrics.counter(prefix + ".runs")->Add(1);
  metrics.counter(prefix + ".sorted_accesses")->Add(stats.sorted_accesses);
  metrics.counter(prefix + ".random_accesses")->Add(stats.random_accesses);
  metrics.counter(prefix + ".ids_scored")->Add(stats.ids_scored);
  metrics.counter(prefix + ".rounds")->Add(stats.rounds);
  metrics.counter(prefix + ".threshold_checks")->Add(stats.threshold_checks);
  metrics.counter(prefix + ".dense_accesses")->Add(stats.dense_accesses);
  metrics.counter(prefix + ".hash_accesses")->Add(stats.hash_accesses);
  metrics.histogram(prefix + ".latency_us")->Record(elapsed_us);
}

Result<std::vector<ScoredEntry>> FaginTopK(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(ValidateTopK(lists, options.k));
  TraceSpan span("FaginTopK", "fagin");
  MeteredRun run("ta", &stats);
  bool most = options.direction == RankDirection::kMostUnfair;

  const size_t universe = UniverseOf(lists, options.universe_hint);
  std::vector<uint8_t> allowed_scratch;
  const uint8_t* allowed =
      BuildAllowedBitmap(options.allowed, universe, &allowed_scratch);

  std::vector<size_t> cursors(lists.size(), 0);
  std::vector<uint8_t> seen(universe, 0);

  // `kept` is a heap whose top is the *worst* retained entry, so it can be
  // evicted when a better candidate arrives. std::push_heap puts the
  // comparator-largest element on top, so "better" must compare as smaller.
  std::vector<ScoredEntry> kept;
  auto worse_on_top = [dir = options.direction](const ScoredEntry& a,
                                                const ScoredEntry& b) {
    return Better(a.value, b.value, dir);
  };

  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      size_t at = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i]->entry(at);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!IsAllowed(allowed, e.pos) || seen[static_cast<size_t>(e.pos)] != 0) {
        continue;
      }
      seen[static_cast<size_t>(e.pos)] = 1;
      std::optional<double> agg =
          DenseAggregate(lists, e.pos, options.missing, stats);
      if (!agg.has_value()) continue;  // unreachable: e.pos is in list i
      ++stats->ids_scored;
      ScoredEntry scored{e.pos, *agg};
      if (kept.size() < options.k) {
        kept.push_back(scored);
        std::push_heap(kept.begin(), kept.end(), worse_on_top);
      } else if (Better(scored.value, kept.front().value, options.direction)) {
        std::pop_heap(kept.begin(), kept.end(), worse_on_top);
        kept.back() = scored;
        std::push_heap(kept.begin(), kept.end(), worse_on_top);
      }
    }
    if (!any_read) break;  // every list exhausted
    ++stats->rounds;

    if (kept.size() >= options.k) {
      ++stats->threshold_checks;
      double tau = ThresholdBound(lists, cursors, options);
      double kth = kept.front().value;
      bool done = most ? (kth >= tau) : (kth <= tau);
      if (done) break;
    }
  }

  SortResults(&kept, options.direction);
  return kept;
}

Result<std::vector<ScoredEntry>> ScanTopK(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(ValidateTopK(lists, options.k));
  TraceSpan span("ScanTopK", "fagin");
  MeteredRun run("scan", &stats);

  const size_t universe = UniverseOf(lists, options.universe_hint);
  std::vector<uint8_t> allowed_scratch;
  const uint8_t* allowed =
      BuildAllowedBitmap(options.allowed, universe, &allowed_scratch);

  std::vector<ScoredEntry> scored;
  if (UseParallelScoring(lists.size(), universe)) {
    // Wide fan-out: mark candidates in one cheap pass over the entries, then
    // fan candidate scoring out across position chunks.
    std::vector<uint8_t> candidates(universe, 0);
    for (const InvertedIndex* list : lists) {
      stats->rounds = std::max(stats->rounds, list->size());
      stats->sorted_accesses += list->size();
      for (size_t i = 0; i < list->size(); ++i) {
        int32_t pos = list->entry(i).pos;
        if (IsAllowed(allowed, pos)) candidates[static_cast<size_t>(pos)] = 1;
      }
    }
    ScoreCandidates(lists, universe, candidates, options.missing, stats,
                    &scored);
  } else {
    // Single pass over all list entries into per-position accumulators:
    // O(total entries) instead of O(candidates × lists) random accesses.
    // Lists are visited in order, so each position's sum accumulates in the
    // same FP order as per-candidate random access.
    std::vector<double> sums(universe, 0.0);
    std::vector<uint32_t> counts(universe, 0);
    for (const InvertedIndex* list : lists) {
      // A scan's "depth" is the longest list: it reads everything.
      stats->rounds = std::max(stats->rounds, list->size());
      stats->sorted_accesses += list->size();
      for (size_t i = 0; i < list->size(); ++i) {
        const ScoredEntry& e = list->entry(i);
        if (!IsAllowed(allowed, e.pos)) continue;
        sums[static_cast<size_t>(e.pos)] += e.value;
        ++counts[static_cast<size_t>(e.pos)];
      }
    }
    // counts[pos] > 0 already implies the position was allowed: disallowed
    // entries never reach the accumulators.
    for (size_t pos = 0; pos < universe; ++pos) {
      if (counts[pos] == 0) continue;
      // The legacy engine answered each candidate with one random access per
      // list; the accumulator pass keeps those counter semantics.
      stats->random_accesses += lists.size();
      stats->dense_accesses += lists.size();
      ++stats->ids_scored;
      double denom = options.missing == MissingCellPolicy::kSkip
                         ? static_cast<double>(counts[pos])
                         : static_cast<double>(lists.size());
      scored.push_back(
          ScoredEntry{static_cast<int32_t>(pos), sums[pos] / denom});
    }
  }

  SortResults(&scored, options.direction);
  if (scored.size() > options.k) scored.resize(options.k);
  return scored;
}

}  // namespace fairjob
