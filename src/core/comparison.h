#ifndef FAIRJOB_CORE_COMPARISON_H_
#define FAIRJOB_CORE_COMPARISON_H_

#include <vector>

#include "common/status.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Problem 2 (Fairness Comparison): compare two values r1, r2 of one
// dimension, broken down by a second dimension; the third dimension is
// aggregated away. Returns every breakdown value whose (r1 vs r2) unfairness
// order differs from the overall order.
//
// Instances: group-comparison (r = groups, B = locations or queries),
// query-comparison (r = queries, B = groups or locations),
// location-comparison (r = locations, B = queries or groups).
struct ComparisonRequest {
  Dimension compare_dim = Dimension::kGroup;
  size_t r1_pos = 0;  // positions on the compare axis of the cube
  size_t r2_pos = 0;
  // Optional set comparison (Section 3.4's d<G,Q,L> generalization): when
  // non-empty these position sets override r1_pos / r2_pos, e.g. comparing
  // Males = {Asian Male, Black Male, White Male} against the female cells.
  // For a binary attribute the single-group exposure comparison is exactly
  // symmetric (the two groups' shares are complements), so Table 12-style
  // questions need the set form.
  std::vector<size_t> r1_set;
  std::vector<size_t> r2_set;
  Dimension breakdown_dim = Dimension::kLocation;
  // Restriction of the breakdown axis (empty = all), e.g. "only the
  // General Cleaning sub-queries" in Table 15.
  AxisSelector breakdown;
  // Restriction of the remaining aggregated axis (empty = all).
  AxisSelector aggregated;
};

struct ComparisonRow {
  int32_t breakdown_id;  // id on the breakdown axis
  double d1;             // unfairness of r1 at this breakdown value
  double d2;             // unfairness of r2 at this breakdown value
  bool reversed;         // order differs from the overall comparison
};

struct ComparisonResult {
  double overall_d1 = 0.0;  // d<r1> over the breakdown × aggregated axes
  double overall_d2 = 0.0;
  std::vector<ComparisonRow> rows;      // every defined breakdown value
  std::vector<ComparisonRow> reversed;  // the rows the problem returns
};

// Algorithm 2 generalized over dimensions. A row counts as *reversed* when
// the sign of (d1 − d2) flips strictly, or when the overall comparison is
// strict and the row is tied — i.e. the paper's
// (d1_all ≥ d2_all ∧ d1_b ≤ d2_b) ∨ (d1_all ≤ d2_all ∧ d1_b ≥ d2_b)
// minus the degenerate case where both comparisons are exact ties.
//
// Errors: InvalidArgument when compare_dim == breakdown_dim, positions are
// out of range, or r1_pos == r2_pos; NotFound when either overall aggregate
// is undefined (no present cells).
Result<ComparisonResult> SolveComparison(const UnfairnessCube& cube,
                                         const ComparisonRequest& request);

// Algorithm 3: d<r,Q,L> — the average unfairness of position `pos` of
// dimension `dim` over selected positions of the other two axes (ascending
// Dimension order; empty = all). Errors: NotFound when no cell is present.
Result<double> ComputeAggregateUnfairness(const UnfairnessCube& cube,
                                          Dimension dim, size_t pos,
                                          const AxisSelector& other1 = {},
                                          const AxisSelector& other2 = {});

}  // namespace fairjob

#endif  // FAIRJOB_CORE_COMPARISON_H_
