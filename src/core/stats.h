#ifndef FAIRJOB_CORE_STATS_H_
#define FAIRJOB_CORE_STATS_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "core/comparison.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Statistical backing for the framework's point estimates — the paper's
// conclusion calls for "further statistical ... investigations"; these
// routines quantify how stable a quantification ranking or a comparison
// verdict is under resampling of the observed (query, location) cells.

struct ConfidenceInterval {
  double point = 0.0;  // the plain aggregate (mean of present cells)
  double lo = 0.0;     // percentile bootstrap bounds
  double hi = 0.0;
  size_t cells = 0;    // present cells behind the aggregate
  size_t resamples = 0;
};

// Percentile-bootstrap confidence interval for d<r, ·, ·>: the aggregate
// unfairness of position `pos` on axis `dim`, over the selected positions
// of the two other axes (ascending Dimension order, empty = all). Present
// cells are resampled with replacement.
//
// Errors: InvalidArgument (bad position/level/resamples), NotFound (no
// present cells).
Result<ConfidenceInterval> BootstrapAggregate(
    const UnfairnessCube& cube, Dimension dim, size_t pos,
    const AxisSelector& other1, const AxisSelector& other2, size_t resamples,
    double confidence, Rng* rng);

struct PermutationTestResult {
  double observed_diff = 0.0;  // mean(r1 cells) − mean(r2 cells), paired
  double p_value = 1.0;        // two-sided sign-flip permutation p-value
  size_t pairs = 0;            // coordinates where both cells are present
  size_t resamples = 0;
};

// Paired sign-flip permutation test for a Problem-2 comparison: are the
// unfairness values of r1 and r2 (cells at identical (other1, other2)
// coordinates) systematically different, or is the observed gap explainable
// by chance? Under the null the r1/r2 labels are exchangeable per
// coordinate; each resample flips every pair independently.
//
// Errors: InvalidArgument (positions equal/out of range, resamples == 0),
// FailedPrecondition (fewer than 2 paired cells).
Result<PermutationTestResult> PairedPermutationTest(
    const UnfairnessCube& cube, Dimension compare_dim, size_t r1_pos,
    size_t r2_pos, const AxisSelector& other1, const AxisSelector& other2,
    size_t resamples, Rng* rng);

// Problem 2 with statistical backing: the plain comparison result plus a
// paired permutation p-value for the overall contrast and for every
// breakdown row — so an analyst can tell a reversal from resampling noise.
struct SignificantComparisonRow {
  ComparisonRow row;
  double p_value = 1.0;  // 1.0 when a row has < 2 paired cells
  size_t pairs = 0;
};

struct SignificantComparisonResult {
  ComparisonResult base;
  double overall_p_value = 1.0;
  std::vector<SignificantComparisonRow> rows;  // parallel to base.rows
};

// Errors: as SolveComparison; additionally InvalidArgument for set-valued
// comparisons (r1_set/r2_set), which have no per-cell pairing.
Result<SignificantComparisonResult> SolveComparisonWithSignificance(
    const UnfairnessCube& cube, const ComparisonRequest& request,
    size_t resamples, Rng* rng);

// Problem 1 with stability flags: a full ranking of one dimension where
// each answer carries its bootstrap CI and whether it is *separated* from
// the next-ranked answer (their CIs do not overlap). Rank positions whose
// intervals overlap are interchangeable under resampling — reporting them
// as a strict order would overclaim.
struct StableRankEntry {
  int32_t id = 0;       // axis id
  double value = 0.0;   // point estimate
  ConfidenceInterval ci;
  bool separated_from_next = false;  // last entry: always false
};

// Errors: InvalidArgument (bad k/resamples/level).
Result<std::vector<StableRankEntry>> RankWithStability(
    const UnfairnessCube& cube, Dimension dim, size_t k, size_t resamples,
    double confidence, Rng* rng);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_STATS_H_
