#ifndef FAIRJOB_CORE_QUANTIFICATION_BATCH_H_
#define FAIRJOB_CORE_QUANTIFICATION_BATCH_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/quantification.h"

namespace fairjob {

// Execution counters for one SolveQuantificationBatch call, exported by the
// serving layer as serve.batch.* (docs/observability.md). The amortization
// the batch engine buys is lists_demanded / lists_gathered: what N
// per-request executions would have materialized vs. what the grouped pass
// actually touched.
struct BatchExecStats {
  size_t requests = 0;   // lanes that reached an engine (valid requests)
  size_t invalid = 0;    // requests rejected by validation
  size_t groups = 0;     // distinct (target, agg1, agg2) selector groups
  size_t lists_gathered = 0;  // inverted lists materialized (once per group)
  size_t lists_demanded = 0;  // lists N per-request runs would have gathered
  size_t scan_lanes = 0;
  size_t ta_lanes = 0;
  size_t fa_lanes = 0;
  size_t nra_lanes = 0;
  size_t shared_scan_passes = 0;  // one per group with >= 1 scan lane
};

// Multi-request Fagin executor: answers a whole batch of quantification
// requests with one pass over each distinct list view.
//
// Requests are grouped by their exact (target, agg1, agg2) selector
// sequences — not the canonical multiset the cache key uses — because
// IndexSet::ListsFor resolves positions verbatim (order and duplicates
// included) and per-candidate FP summation follows list order, so only the
// literal sequence guarantees a bitwise-identical list view. Each group
// materializes its inverted lists once; every request in the group becomes
// a *lane* (its own k / direction / missing policy / allowed bitmap /
// algorithm) driven during shared passes over those lists:
//
//  * scan lanes share ONE unfiltered accumulation pass over all list
//    entries (a position's sum is independent of every other position, so
//    lane filters only select which positions are emitted);
//  * TA / FA lanes of the same direction share the round-robin sorted
//    access — cursors advance identically in the per-request engines, so
//    each entry is read once per round and delivered to every active lane;
//  * NRA lanes share the sorted access and the per-round frontier bounds,
//    keeping per-lane bound state.
//
// Contract: results[i] is bitwise-identical to
// SolveQuantification(cube, indices, requests[i]) — same answers (bit-equal
// values, same order), same FaginStats, same error codes and messages, for
// every request independently of what else is in the batch. The per-request
// path stays the differential reference (tests/batch_exec_test.cc,
// bench_batch_exec's identity gate).
//
// Unlike the per-request engines, batch lanes do not publish
// fagin.<algorithm>.* metrics (a shared pass has no meaningful per-lane
// latency); the serving layer publishes serve.batch.* from `stats` instead.
std::vector<Result<QuantificationResult>> SolveQuantificationBatch(
    const UnfairnessCube& cube, const IndexSet& indices,
    const std::vector<QuantificationRequest>& requests,
    BatchExecStats* stats = nullptr);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_QUANTIFICATION_BATCH_H_
