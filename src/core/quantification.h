#ifndef FAIRJOB_CORE_QUANTIFICATION_H_
#define FAIRJOB_CORE_QUANTIFICATION_H_

#include <vector>

#include "common/status.h"
#include "core/fagin.h"
#include "core/fagin_family.h"
#include "core/indices.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Problem 1 (Fairness Quantification): return the k values of the `target`
// dimension for which the site is most (or least) unfair, aggregating the
// other two dimensions.
struct QuantificationRequest {
  Dimension target = Dimension::kGroup;
  size_t k = 5;
  RankDirection direction = RankDirection::kMostUnfair;
  MissingCellPolicy missing = MissingCellPolicy::kSkip;
  // Restrict the aggregated dimensions (positions on those cube axes; empty
  // = all). `agg1` is the lower-numbered of the two non-target dimensions —
  // e.g. for target kQuery, agg1 selects groups, agg2 selects locations.
  AxisSelector agg1;
  AxisSelector agg2;
  // Restrict the candidate set on the target axis (empty = all).
  std::vector<int32_t> allowed_targets;
  // Which member of the Fagin family answers the request (all return the
  // same top-k up to ties; they differ in sorted/random access counts).
  TopKAlgorithm algorithm = TopKAlgorithm::kThresholdAlgorithm;
};

struct QuantificationAnswer {
  int32_t id;    // the group/query/location id (cube axis id, not position)
  double value;  // aggregated unfairness d<r, ·, ·>
};

struct QuantificationResult {
  std::vector<QuantificationAnswer> answers;  // best-first for the direction
  FaginStats stats;
};

// The two non-target dimensions of `target`, ascending Dimension order —
// the agg1/agg2 convention shared by SolveQuantification, the cache key and
// the batched executor.
void QuantificationOtherDims(Dimension target, Dimension* d1, Dimension* d2);

// Request-shape validation against the cube's axis sizes: selector and
// allowed-target positions must be in range. Exactly the checks (and
// messages) SolveQuantification applies before touching the indices; shared
// with SolveQuantificationBatch so both paths reject identically.
Status ValidateQuantificationRequest(const UnfairnessCube& cube,
                                     const QuantificationRequest& request);

// Solves Problem 1 against a cube and its pre-built indices. Errors:
// InvalidArgument on malformed requests (k = 0, selector positions out of
// range).
Result<QuantificationResult> SolveQuantification(
    const UnfairnessCube& cube, const IndexSet& indices,
    const QuantificationRequest& request);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_QUANTIFICATION_H_
