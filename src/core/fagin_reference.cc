#include "core/fagin_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/fagin_run_metrics.h"

namespace fairjob {
namespace {

using fagin_internal::MeteredRun;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool Better(double a, double b, RankDirection dir) {
  return dir == RankDirection::kMostUnfair ? a > b : a < b;
}

void SortResults(std::vector<ScoredEntry>* out, RankDirection dir) {
  std::sort(out->begin(), out->end(),
            [dir](const ScoredEntry& a, const ScoredEntry& b) {
              if (a.value != b.value) return Better(a.value, b.value, dir);
              return a.pos < b.pos;
            });
}

Status Validate(const std::vector<HashedListView>& lists, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lists.empty()) {
    return Status::InvalidArgument("top-k needs at least one inverted list");
  }
  return Status::OK();
}

// Aggregate of `pos` across all lists under the missing-cell policy via
// hash-map random access; nullopt when the id appears in no list.
std::optional<double> Aggregate(const std::vector<HashedListView>& lists,
                                int32_t pos, MissingCellPolicy policy,
                                FaginStats* stats) {
  double sum = 0.0;
  size_t present = 0;
  stats->random_accesses += lists.size();
  stats->hash_accesses += lists.size();
  for (const HashedListView& list : lists) {
    std::optional<double> v = list.Find(pos);
    if (v.has_value()) {
      sum += *v;
      ++present;
    }
  }
  if (present == 0) return std::nullopt;
  if (policy == MissingCellPolicy::kSkip) {
    return sum / static_cast<double>(present);
  }
  return sum / static_cast<double>(lists.size());
}

// Bound on the aggregate of any id never returned by sorted access so far.
double Threshold(const std::vector<HashedListView>& lists,
                 const std::vector<size_t>& cursors, const TopKOptions& opt) {
  bool most = opt.direction == RankDirection::kMostUnfair;
  if (opt.missing == MissingCellPolicy::kSkip) {
    double bound = most ? -kInf : kInf;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i].size()) continue;  // exhausted: no unseen ids
      size_t next = most ? cursors[i] : lists[i].size() - 1 - cursors[i];
      double frontier = lists[i].entry(next).value;
      bound = most ? std::max(bound, frontier) : std::min(bound, frontier);
    }
    return bound;
  }
  double sum = 0.0;
  for (size_t i = 0; i < lists.size(); ++i) {
    if (cursors[i] >= lists[i].size()) continue;  // per-list bound is 0
    size_t next = most ? cursors[i] : lists[i].size() - 1 - cursors[i];
    double frontier = lists[i].entry(next).value;
    sum += most ? std::max(frontier, 0.0) : std::min(frontier, 0.0);
  }
  return sum / static_cast<double>(lists.size());
}

}  // namespace

HashedListView::HashedListView(const InvertedIndex* list) : list_(list) {
  if (list_ == nullptr) return;
  by_pos_.reserve(list_->size());
  for (size_t i = 0; i < list_->size(); ++i) {
    const ScoredEntry& e = list_->entry(i);
    by_pos_.emplace(e.pos, e.value);
  }
}

std::optional<double> HashedListView::Find(int32_t pos) const {
  auto it = by_pos_.find(pos);
  if (it == by_pos_.end()) return std::nullopt;
  return it->second;
}

std::vector<HashedListView> BuildHashedViews(
    const std::vector<const InvertedIndex*>& lists) {
  std::vector<HashedListView> views;
  views.reserve(lists.size());
  for (const InvertedIndex* list : lists) views.emplace_back(list);
  return views;
}

Result<std::vector<ScoredEntry>> ReferenceFaginTopK(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  MeteredRun run("ref_ta", &stats);
  bool most = options.direction == RankDirection::kMostUnfair;

  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  auto is_allowed = [&](int32_t pos) {
    return options.allowed == nullptr || allowed.count(pos) > 0;
  };

  std::vector<size_t> cursors(lists.size(), 0);
  std::unordered_set<int32_t> seen;

  std::vector<ScoredEntry> kept;
  auto worse_on_top = [dir = options.direction](const ScoredEntry& a,
                                                const ScoredEntry& b) {
    return Better(a.value, b.value, dir);
  };

  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i].size()) continue;
      size_t at = most ? cursors[i] : lists[i].size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i].entry(at);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!is_allowed(e.pos) || !seen.insert(e.pos).second) continue;
      std::optional<double> agg =
          Aggregate(lists, e.pos, options.missing, stats);
      if (!agg.has_value()) continue;  // unreachable: e.pos is in list i
      ++stats->ids_scored;
      ScoredEntry scored{e.pos, *agg};
      if (kept.size() < options.k) {
        kept.push_back(scored);
        std::push_heap(kept.begin(), kept.end(), worse_on_top);
      } else if (Better(scored.value, kept.front().value, options.direction)) {
        std::pop_heap(kept.begin(), kept.end(), worse_on_top);
        kept.back() = scored;
        std::push_heap(kept.begin(), kept.end(), worse_on_top);
      }
    }
    if (!any_read) break;  // every list exhausted
    ++stats->rounds;

    if (kept.size() >= options.k) {
      ++stats->threshold_checks;
      double tau = Threshold(lists, cursors, options);
      double kth = kept.front().value;
      bool done = most ? (kth >= tau) : (kth <= tau);
      if (done) break;
    }
  }

  SortResults(&kept, options.direction);
  return kept;
}

Result<std::vector<ScoredEntry>> ReferenceScanTopK(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  MeteredRun run("ref_scan", &stats);
  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  std::unordered_set<int32_t> ids;
  for (const HashedListView& list : lists) {
    // A scan's "depth" is the longest list: it reads everything.
    stats->rounds = std::max(stats->rounds, list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      ++stats->sorted_accesses;
      int32_t pos = list.entry(i).pos;
      if (options.allowed == nullptr || allowed.count(pos) > 0) {
        ids.insert(pos);
      }
    }
  }
  std::vector<ScoredEntry> scored;
  scored.reserve(ids.size());
  for (int32_t pos : ids) {
    std::optional<double> agg = Aggregate(lists, pos, options.missing, stats);
    if (agg.has_value()) {
      ++stats->ids_scored;
      scored.push_back(ScoredEntry{pos, *agg});
    }
  }
  SortResults(&scored, options.direction);
  if (scored.size() > options.k) scored.resize(options.k);
  return scored;
}

Result<std::vector<ScoredEntry>> ReferenceFaginFA(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  MeteredRun run("ref_fa", &stats);
  bool most = options.direction == RankDirection::kMostUnfair;
  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  auto is_allowed = [&](int32_t pos) {
    return options.allowed == nullptr || allowed.count(pos) > 0;
  };

  std::vector<size_t> cursors(lists.size(), 0);
  std::unordered_map<int32_t, size_t> lists_seen;
  size_t complete_ids = 0;
  bool can_stop_early = options.missing == MissingCellPolicy::kZero;
  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i].size()) continue;
      size_t at = most ? cursors[i] : lists[i].size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i].entry(at);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!is_allowed(e.pos)) continue;
      size_t seen = ++lists_seen[e.pos];
      if (seen == lists.size()) ++complete_ids;
    }
    if (!any_read) break;
    ++stats->rounds;
    if (can_stop_early) {
      ++stats->threshold_checks;
      if (complete_ids >= options.k) break;
    }
  }

  std::vector<ScoredEntry> scored;
  scored.reserve(lists_seen.size());
  for (const auto& [pos, seen] : lists_seen) {
    std::optional<double> agg = Aggregate(lists, pos, options.missing, stats);
    if (agg.has_value()) {
      ++stats->ids_scored;
      scored.push_back(ScoredEntry{pos, *agg});
    }
  }
  SortResults(&scored, options.direction);
  if (scored.size() > options.k) scored.resize(options.k);
  return scored;
}

Result<std::vector<ScoredEntry>> ReferenceFaginNRA(
    const std::vector<HashedListView>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  if (options.missing != MissingCellPolicy::kZero) {
    return Status::InvalidArgument(
        "NRA bounds require MissingCellPolicy::kZero (the average over "
        "present lists is not monotone in the unknown entries)");
  }
  if (options.direction != RankDirection::kMostUnfair) {
    return Status::InvalidArgument(
        "NRA supports kMostUnfair only; use TA or the scan for bottom-k");
  }
  MeteredRun run("ref_nra", &stats);
  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  auto is_allowed = [&](int32_t pos) {
    return options.allowed == nullptr || allowed.count(pos) > 0;
  };

  const size_t num_lists = lists.size();
  const double denom = static_cast<double>(num_lists);
  struct Candidate {
    double known_sum = 0.0;
    // Bitmask of lists whose value is known (sorted access saw this id).
    uint64_t known_mask = 0;
  };
  if (num_lists > 64) {
    return Status::InvalidArgument("NRA supports at most 64 lists");
  }
  std::unordered_map<int32_t, Candidate> candidates;
  std::vector<size_t> cursors(num_lists, 0);

  auto frontier = [&](size_t i) -> double {
    if (cursors[i] >= lists[i].size()) return 0.0;  // exhausted: rest is 0
    return std::max(lists[i].entry(cursors[i]).value, 0.0);
  };

  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < num_lists; ++i) {
      if (cursors[i] >= lists[i].size()) continue;
      const ScoredEntry& e = lists[i].entry(cursors[i]);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!is_allowed(e.pos)) continue;
      Candidate& c = candidates[e.pos];
      c.known_sum += e.value;
      c.known_mask |= (1ull << i);
    }
    if (!any_read) break;
    ++stats->rounds;

    if (candidates.size() < options.k) continue;
    ++stats->threshold_checks;

    double frontier_sum = 0.0;
    for (size_t i = 0; i < num_lists; ++i) frontier_sum += frontier(i);

    std::vector<std::pair<double, int32_t>> lowers;
    lowers.reserve(candidates.size());
    for (const auto& [pos, c] : candidates) {
      lowers.emplace_back(c.known_sum / denom, pos);
    }
    std::nth_element(
        lowers.begin(), lowers.begin() + static_cast<long>(options.k - 1),
        lowers.end(), [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
    double kth_lower = lowers[options.k - 1].first;
    std::unordered_set<int32_t> top_positions;
    for (size_t i = 0; i < options.k; ++i) {
      top_positions.insert(lowers[i].second);
    }

    double outside_upper = frontier_sum / denom;  // fully unseen id
    for (const auto& [pos, c] : candidates) {
      if (top_positions.count(pos) > 0) continue;
      double upper = c.known_sum;
      for (size_t i = 0; i < num_lists; ++i) {
        if ((c.known_mask & (1ull << i)) == 0) upper += frontier(i);
      }
      outside_upper = std::max(outside_upper, upper / denom);
    }
    if (kth_lower >= outside_upper) {
      std::vector<ScoredEntry> out;
      out.reserve(options.k);
      for (int32_t pos : top_positions) {
        std::optional<double> agg =
            Aggregate(lists, pos, options.missing, stats);
        if (agg.has_value()) {
          ++stats->ids_scored;
          out.push_back(ScoredEntry{pos, *agg});
        }
      }
      SortResults(&out, options.direction);
      return out;
    }
  }

  std::vector<ScoredEntry> out;
  out.reserve(candidates.size());
  for (const auto& [pos, c] : candidates) {
    ++stats->ids_scored;
    out.push_back(ScoredEntry{pos, c.known_sum / denom});
  }
  SortResults(&out, options.direction);
  if (out.size() > options.k) out.resize(options.k);
  return out;
}

Result<std::vector<ScoredEntry>> ReferenceRunTopK(
    TopKAlgorithm algorithm, const std::vector<HashedListView>& lists,
    const TopKOptions& options, FaginStats* stats) {
  switch (algorithm) {
    case TopKAlgorithm::kThresholdAlgorithm:
      return ReferenceFaginTopK(lists, options, stats);
    case TopKAlgorithm::kFA:
      return ReferenceFaginFA(lists, options, stats);
    case TopKAlgorithm::kNRA:
      return ReferenceFaginNRA(lists, options, stats);
    case TopKAlgorithm::kScan:
      return ReferenceScanTopK(lists, options, stats);
  }
  return Status::InvalidArgument("unknown top-k algorithm");
}

}  // namespace fairjob
