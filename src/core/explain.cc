#include "core/explain.h"

#include <algorithm>
#include <cmath>

#include "ranking/emd.h"
#include "ranking/exposure.h"
#include "ranking/histogram.h"

namespace fairjob {
namespace {

std::vector<size_t> GroupPositions(const MarketplaceDataset& data,
                                   const GroupSpace& space, GroupId g,
                                   const MarketRanking& ranking) {
  const GroupLabel& label = space.label(g);
  std::vector<size_t> out;
  for (size_t i = 0; i < ranking.workers.size(); ++i) {
    if (label.Matches(data.worker_demographics(ranking.workers[i]))) {
      out.push_back(i);
    }
  }
  return out;
}

double MeanRankFraction(const std::vector<size_t>& positions, size_t n) {
  if (positions.empty() || n == 0) return 0.0;
  double sum = 0.0;
  for (size_t pos : positions) sum += static_cast<double>(pos);
  return sum / static_cast<double>(positions.size()) /
         static_cast<double>(n);
}

Result<std::vector<double>> WorkerValues(const MarketRanking& ranking,
                                         const MeasureOptions& options) {
  size_t n = ranking.workers.size();
  if (options.use_scores_if_available && !ranking.scores.empty()) {
    return ranking.scores;
  }
  std::vector<double> values(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    FAIRJOB_ASSIGN_OR_RETURN(values[i], RelevanceFromRank(i + 1, n));
  }
  return values;
}

// |exp share − rel share| of g contrasted against a single comparable.
double PairwiseExposureDeviation(const std::vector<size_t>& own,
                                 const std::vector<size_t>& theirs,
                                 const std::vector<double>& values) {
  auto exposure_of = [](const std::vector<size_t>& positions) {
    double total = 0.0;
    for (size_t pos : positions) total += ExposureAtRank(pos + 1);
    return total;
  };
  auto relevance_of = [&](const std::vector<size_t>& positions) {
    double total = 0.0;
    for (size_t pos : positions) total += values[pos];
    return total;
  };
  double own_exp = exposure_of(own);
  double their_exp = exposure_of(theirs);
  double own_rel = relevance_of(own);
  double their_rel = relevance_of(theirs);
  double exp_share = own_exp / (own_exp + their_exp);
  double rel_denominator = own_rel + their_rel;
  double rel_share = rel_denominator > 0.0 ? own_rel / rel_denominator : 0.0;
  return std::fabs(exp_share - rel_share);
}

}  // namespace

Result<MarketTripleExplanation> ExplainMarketplaceTriple(
    const MarketplaceDataset& data, const GroupSpace& space, GroupId g,
    QueryId q, LocationId l, MarketMeasure measure,
    const MeasureOptions& options) {
  // The headline value comes from the canonical measure so the explanation
  // always matches what the cube holds.
  FAIRJOB_ASSIGN_OR_RETURN(
      double value, MarketplaceUnfairness(data, space, g, q, l, measure,
                                          options));
  const MarketRanking* ranking = data.GetRanking(q, l);
  // MarketplaceUnfairness succeeded, so the ranking exists and g has members.
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<double> values,
                           WorkerValues(*ranking, options));
  std::vector<size_t> own = GroupPositions(data, space, g, *ranking);

  MarketTripleExplanation explanation;
  explanation.value = value;
  explanation.group_members = own.size();
  explanation.group_mean_rank_fraction =
      MeanRankFraction(own, ranking->workers.size());
  explanation.result_size = ranking->workers.size();

  FAIRJOB_ASSIGN_OR_RETURN(Histogram own_hist,
                           Histogram::Make(options.histogram_bins, 0.0, 1.0));
  for (size_t pos : own) own_hist.Add(values[pos]);

  for (GroupId other : space.Comparables(g)) {
    std::vector<size_t> theirs = GroupPositions(data, space, other, *ranking);
    if (theirs.empty()) continue;
    ComparableContribution contribution;
    contribution.comparable = other;
    contribution.members = theirs.size();
    contribution.mean_rank_fraction =
        MeanRankFraction(theirs, ranking->workers.size());
    if (measure == MarketMeasure::kEmd) {
      FAIRJOB_ASSIGN_OR_RETURN(
          Histogram their_hist,
          Histogram::Make(options.histogram_bins, 0.0, 1.0));
      for (size_t pos : theirs) their_hist.Add(values[pos]);
      FAIRJOB_ASSIGN_OR_RETURN(contribution.distance,
                               EmdBetweenHistograms(own_hist, their_hist));
    } else {
      contribution.distance = PairwiseExposureDeviation(own, theirs, values);
    }
    explanation.comparables.push_back(contribution);
  }
  std::sort(explanation.comparables.begin(), explanation.comparables.end(),
            [](const ComparableContribution& a,
               const ComparableContribution& b) {
              if (a.distance != b.distance) return a.distance > b.distance;
              return a.comparable < b.comparable;
            });
  return explanation;
}

Result<SearchTripleExplanation> ExplainSearchTriple(
    const SearchDataset& data, const GroupSpace& space, GroupId g, QueryId q,
    LocationId l, SearchMeasure measure, const MeasureOptions& options) {
  FAIRJOB_ASSIGN_OR_RETURN(
      double value, SearchUnfairness(data, space, g, q, l, measure, options));
  const std::vector<SearchObservation>* obs = data.GetObservations(q, l);

  auto lists_of_group = [&](GroupId group) {
    const GroupLabel& label = space.label(group);
    std::vector<const RankedList*> lists;
    for (const SearchObservation& o : *obs) {
      if (label.Matches(data.user_demographics(o.user))) {
        lists.push_back(&o.results);
      }
    }
    return lists;
  };

  std::vector<const RankedList*> own = lists_of_group(g);
  SearchTripleExplanation explanation;
  explanation.value = value;
  explanation.group_observations = own.size();

  for (GroupId other : space.Comparables(g)) {
    std::vector<const RankedList*> theirs = lists_of_group(other);
    if (theirs.empty()) continue;
    double pair_sum = 0.0;
    for (const RankedList* a : own) {
      for (const RankedList* b : theirs) {
        FAIRJOB_ASSIGN_OR_RETURN(double d,
                                 SearchListDistance(measure, *a, *b, options));
        pair_sum += d;
      }
    }
    ComparableContribution contribution;
    contribution.comparable = other;
    contribution.distance =
        pair_sum / static_cast<double>(own.size() * theirs.size());
    contribution.members = theirs.size();
    explanation.comparables.push_back(contribution);
  }
  std::sort(explanation.comparables.begin(), explanation.comparables.end(),
            [](const ComparableContribution& a,
               const ComparableContribution& b) {
              if (a.distance != b.distance) return a.distance > b.distance;
              return a.comparable < b.comparable;
            });
  return explanation;
}

Result<std::vector<CellContribution>> TopContributingCells(
    const UnfairnessCube& cube, Dimension dim, size_t pos, size_t k) {
  if (pos >= cube.axis_size(dim)) {
    return Status::InvalidArgument("position out of range on axis '" +
                                   std::string(DimensionName(dim)) + "'");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");

  Dimension d1 = Dimension::kQuery;
  Dimension d2 = Dimension::kLocation;
  switch (dim) {
    case Dimension::kGroup:
      d1 = Dimension::kQuery;
      d2 = Dimension::kLocation;
      break;
    case Dimension::kQuery:
      d1 = Dimension::kGroup;
      d2 = Dimension::kLocation;
      break;
    case Dimension::kLocation:
      d1 = Dimension::kGroup;
      d2 = Dimension::kQuery;
      break;
  }

  std::vector<CellContribution> cells;
  for (size_t p1 = 0; p1 < cube.axis_size(d1); ++p1) {
    for (size_t p2 = 0; p2 < cube.axis_size(d2); ++p2) {
      size_t coords[3];
      coords[static_cast<size_t>(dim)] = pos;
      coords[static_cast<size_t>(d1)] = p1;
      coords[static_cast<size_t>(d2)] = p2;
      std::optional<double> v = cube.Get(coords[0], coords[1], coords[2]);
      if (v.has_value()) {
        cells.push_back(CellContribution{p1, p2, *v});
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const CellContribution& a, const CellContribution& b) {
              if (a.value != b.value) return a.value > b.value;
              if (a.query_pos != b.query_pos) return a.query_pos < b.query_pos;
              return a.location_pos < b.location_pos;
            });
  if (cells.size() > k) cells.resize(k);
  return cells;
}

}  // namespace fairjob
