#include "core/fbox.h"

#include "common/trace.h"

namespace fairjob {

Result<FBox> FBox::ForMarketplace(const MarketplaceDataset* data,
                                  const GroupSpace* space,
                                  MarketMeasure measure,
                                  const BuildOptions& options) {
  TraceSpan span("FBox::ForMarketplace", "fbox");
  if (data == nullptr || space == nullptr) {
    return Status::InvalidArgument("FBox needs a dataset and a group space");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      BuildMarketplaceCube(*data, *space, measure, options.measure,
                           options.axes, options.parallelism));
  return FBox(space, &data->queries(), &data->locations(), std::move(cube));
}

Result<FBox> FBox::ForSearch(const SearchDataset* data, const GroupSpace* space,
                             SearchMeasure measure,
                             const BuildOptions& options) {
  TraceSpan span("FBox::ForSearch", "fbox");
  if (data == nullptr || space == nullptr) {
    return Status::InvalidArgument("FBox needs a dataset and a group space");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      BuildSearchCube(*data, *space, measure, options.measure, options.axes,
                      options.parallelism));
  return FBox(space, &data->queries(), &data->locations(), std::move(cube));
}

Result<size_t> FBox::PosOf(Dimension d, std::string_view name) const {
  int32_t id = 0;
  switch (d) {
    case Dimension::kGroup: {
      FAIRJOB_ASSIGN_OR_RETURN(id, space_->FindByDisplayName(name));
      break;
    }
    case Dimension::kQuery: {
      FAIRJOB_ASSIGN_OR_RETURN(id, queries_->Find(name));
      break;
    }
    case Dimension::kLocation: {
      FAIRJOB_ASSIGN_OR_RETURN(id, locations_->Find(name));
      break;
    }
  }
  return cube_.PosOf(d, id);
}

Result<std::vector<size_t>> FBox::PositionsOf(
    Dimension d, const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    FAIRJOB_ASSIGN_OR_RETURN(size_t pos, PosOf(d, name));
    out.push_back(pos);
  }
  return out;
}

std::string FBox::NameOf(Dimension d, int32_t id) const {
  switch (d) {
    case Dimension::kGroup:
      return space_->label(id).DisplayName(space_->schema());
    case Dimension::kQuery:
      return queries_->NameOf(id);
    case Dimension::kLocation:
      return locations_->NameOf(id);
  }
  return "?";
}

Result<QuantificationResult> FBox::Quantify(
    const QuantificationRequest& request) const {
  return SolveQuantification(cube_, indices_, request);
}

Result<ComparisonResult> FBox::Compare(const ComparisonRequest& request) const {
  return SolveComparison(cube_, request);
}

Result<std::vector<FBox::NamedAnswer>> FBox::TopK(
    Dimension target, size_t k, RankDirection direction) const {
  QuantificationRequest req;
  req.target = target;
  req.k = k;
  req.direction = direction;
  FAIRJOB_ASSIGN_OR_RETURN(QuantificationResult result, Quantify(req));
  std::vector<NamedAnswer> out;
  out.reserve(result.answers.size());
  for (const QuantificationAnswer& a : result.answers) {
    out.push_back(NamedAnswer{NameOf(target, a.id), a.value});
  }
  return out;
}

Result<ComparisonResult> FBox::CompareSetsByName(
    Dimension compare_dim, const std::vector<std::string>& r1,
    const std::vector<std::string>& r2, Dimension breakdown_dim,
    const AxisSelector& breakdown, const AxisSelector& aggregated) const {
  ComparisonRequest req;
  req.compare_dim = compare_dim;
  FAIRJOB_ASSIGN_OR_RETURN(req.r1_set, PositionsOf(compare_dim, r1));
  FAIRJOB_ASSIGN_OR_RETURN(req.r2_set, PositionsOf(compare_dim, r2));
  req.breakdown_dim = breakdown_dim;
  req.breakdown = breakdown;
  req.aggregated = aggregated;
  return Compare(req);
}

Result<ComparisonResult> FBox::CompareByName(
    Dimension compare_dim, std::string_view r1, std::string_view r2,
    Dimension breakdown_dim, const AxisSelector& breakdown,
    const AxisSelector& aggregated) const {
  ComparisonRequest req;
  req.compare_dim = compare_dim;
  FAIRJOB_ASSIGN_OR_RETURN(req.r1_pos, PosOf(compare_dim, r1));
  FAIRJOB_ASSIGN_OR_RETURN(req.r2_pos, PosOf(compare_dim, r2));
  req.breakdown_dim = breakdown_dim;
  req.breakdown = breakdown;
  req.aggregated = aggregated;
  return Compare(req);
}

}  // namespace fairjob
