#include "core/comparison.h"

namespace fairjob {
namespace {

// Builds the (group, query, location) selector triple with `dim` pinned to
// `pos` and the remaining axes taken from `others` in ascending Dimension
// order.
void SelectorsFor(Dimension dim, size_t pos, const AxisSelector& other1,
                  const AxisSelector& other2, AxisSelector out[3]) {
  Dimension d1;
  Dimension d2;
  switch (dim) {
    case Dimension::kGroup:
      d1 = Dimension::kQuery;
      d2 = Dimension::kLocation;
      break;
    case Dimension::kQuery:
      d1 = Dimension::kGroup;
      d2 = Dimension::kLocation;
      break;
    case Dimension::kLocation:
    default:
      d1 = Dimension::kGroup;
      d2 = Dimension::kQuery;
      break;
  }
  out[static_cast<size_t>(dim)] = AxisSelector::Single(pos);
  out[static_cast<size_t>(d1)] = other1;
  out[static_cast<size_t>(d2)] = other2;
}

bool RowIsReversed(double overall_d1, double overall_d2, double d1, double d2) {
  double overall_diff = overall_d1 - overall_d2;
  double row_diff = d1 - d2;
  if (overall_diff == 0.0 && row_diff == 0.0) return false;
  return overall_diff * row_diff <= 0.0;
}

}  // namespace

Result<double> ComputeAggregateUnfairness(const UnfairnessCube& cube,
                                          Dimension dim, size_t pos,
                                          const AxisSelector& other1,
                                          const AxisSelector& other2) {
  if (pos >= cube.axis_size(dim)) {
    return Status::InvalidArgument("position out of range on axis '" +
                                   std::string(DimensionName(dim)) + "'");
  }
  AxisSelector sel[3];
  SelectorsFor(dim, pos, other1, other2, sel);
  std::optional<double> avg = cube.Average(sel[0], sel[1], sel[2]);
  if (!avg.has_value()) {
    return Status::NotFound("aggregate undefined: no present cells");
  }
  return *avg;
}

Result<ComparisonResult> SolveComparison(const UnfairnessCube& cube,
                                         const ComparisonRequest& request) {
  if (request.compare_dim == request.breakdown_dim) {
    return Status::InvalidArgument(
        "compare and breakdown dimensions must differ");
  }
  size_t compare_size = cube.axis_size(request.compare_dim);
  std::vector<size_t> r1 = request.r1_set.empty()
                               ? std::vector<size_t>{request.r1_pos}
                               : request.r1_set;
  std::vector<size_t> r2 = request.r2_set.empty()
                               ? std::vector<size_t>{request.r2_pos}
                               : request.r2_set;
  if (r1 == r2) {
    return Status::InvalidArgument("r1 and r2 must differ");
  }
  for (size_t pos : r1) {
    if (pos >= compare_size) {
      return Status::InvalidArgument("comparison position out of range");
    }
  }
  for (size_t pos : r2) {
    if (pos >= compare_size) {
      return Status::InvalidArgument("comparison position out of range");
    }
  }
  size_t breakdown_size = cube.axis_size(request.breakdown_dim);
  for (size_t pos : request.breakdown.positions) {
    if (pos >= breakdown_size) {
      return Status::InvalidArgument("breakdown position out of range");
    }
  }

  // The remaining (fully aggregated) dimension.
  Dimension agg_dim = Dimension::kGroup;
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    if (d != request.compare_dim && d != request.breakdown_dim) agg_dim = d;
  }
  for (size_t pos : request.aggregated.positions) {
    if (pos >= cube.axis_size(agg_dim)) {
      return Status::InvalidArgument("aggregated position out of range");
    }
  }

  // Overall d<r1>, d<r2>: average over breakdown × aggregated restrictions.
  auto overall_of = [&](const std::vector<size_t>& r) -> std::optional<double> {
    AxisSelector sel[3];
    sel[static_cast<size_t>(request.compare_dim)] = AxisSelector{r};
    sel[static_cast<size_t>(request.breakdown_dim)] = request.breakdown;
    sel[static_cast<size_t>(agg_dim)] = request.aggregated;
    return cube.Average(sel[0], sel[1], sel[2]);
  };
  std::optional<double> overall1 = overall_of(r1);
  std::optional<double> overall2 = overall_of(r2);
  if (!overall1.has_value() || !overall2.has_value()) {
    return Status::NotFound("overall comparison undefined: no present cells");
  }

  ComparisonResult result;
  result.overall_d1 = *overall1;
  result.overall_d2 = *overall2;

  std::vector<size_t> breakdown_positions = request.breakdown.positions;
  if (breakdown_positions.empty()) {
    breakdown_positions.resize(breakdown_size);
    for (size_t i = 0; i < breakdown_size; ++i) breakdown_positions[i] = i;
  }

  for (size_t b : breakdown_positions) {
    auto value_of = [&](const std::vector<size_t>& r) -> std::optional<double> {
      AxisSelector sel[3];
      sel[static_cast<size_t>(request.compare_dim)] = AxisSelector{r};
      sel[static_cast<size_t>(request.breakdown_dim)] =
          AxisSelector::Single(b);
      sel[static_cast<size_t>(agg_dim)] = request.aggregated;
      return cube.Average(sel[0], sel[1], sel[2]);
    };
    std::optional<double> d1 = value_of(r1);
    std::optional<double> d2 = value_of(r2);
    if (!d1.has_value() || !d2.has_value()) continue;  // undefined breakdown

    ComparisonRow row;
    row.breakdown_id = cube.axis_id(request.breakdown_dim, b);
    row.d1 = *d1;
    row.d2 = *d2;
    row.reversed =
        RowIsReversed(result.overall_d1, result.overall_d2, *d1, *d2);
    result.rows.push_back(row);
    if (row.reversed) result.reversed.push_back(row);
  }
  return result;
}

}  // namespace fairjob
