#ifndef FAIRJOB_CORE_EXPLAIN_H_
#define FAIRJOB_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/unfairness_cube.h"
#include "core/unfairness_measures.h"

namespace fairjob {

// Explanations: the paper picks the comparable-groups formulation precisely
// because it "can be more easily leveraged for explanations" (§3.1). These
// routines decompose an unfairness value into the quantities an analyst
// would look at next.

// One comparable group's contribution to d<g,q,l>.
struct ComparableContribution {
  GroupId comparable = 0;
  // Distance between g and this comparable (EMD / pairwise list distance);
  // for the exposure measure this is the comparable's exposure & relevance
  // mass in the denominators instead (see fields below).
  double distance = 0.0;
  size_t members = 0;          // of the comparable group in this cell
  double mean_rank_fraction = 0.0;  // their mean rank / N (0 = top)
};

// Decomposition of a marketplace triple d<g,q,l>.
struct MarketTripleExplanation {
  double value = 0.0;          // the measure value itself
  size_t group_members = 0;    // members of g in the ranking
  double group_mean_rank_fraction = 0.0;
  size_t result_size = 0;      // N of the ranking
  std::vector<ComparableContribution> comparables;  // distance-descending
};

// Explains a marketplace unfairness triple: which comparable group drives
// the average, how many members each side has, and where they sit in the
// ranking. Works for both MarketMeasure variants (for kExposure the
// `distance` field holds |exp share − rel share| computed against that
// single comparable in isolation, which shows which contrast dominates).
//
// Errors: as MarketplaceUnfairness (NotFound when the triple is undefined).
Result<MarketTripleExplanation> ExplainMarketplaceTriple(
    const MarketplaceDataset& data, const GroupSpace& space, GroupId g,
    QueryId q, LocationId l, MarketMeasure measure,
    const MeasureOptions& options = {});

// Decomposition of a search-engine triple d<g,q,l>: which comparable
// group's result lists diverge most from g's.
struct SearchTripleExplanation {
  double value = 0.0;
  size_t group_observations = 0;  // result lists collected for g at (q,l)
  // `distance` = mean pairwise list distance to that comparable;
  // `members` = its observation count; mean_rank_fraction is unused (0).
  std::vector<ComparableContribution> comparables;  // distance-descending
};

// Errors: as SearchUnfairness (NotFound when the triple is undefined).
Result<SearchTripleExplanation> ExplainSearchTriple(
    const SearchDataset& data, const GroupSpace& space, GroupId g, QueryId q,
    LocationId l, SearchMeasure measure, const MeasureOptions& options = {});

// One (query, location) cell's contribution to an aggregate d<r, ·, ·>.
struct CellContribution {
  size_t query_pos = 0;     // cube positions
  size_t location_pos = 0;
  double value = 0.0;
};

// The k cells that pull a group's (or with `dim` = kQuery/kLocation, a
// query's / location's) aggregate up the most — i.e. where an analyst
// should look first. Cells are cube cells with axis `dim` fixed at `pos`;
// for dim != kGroup the two reported positions are the remaining axes in
// ascending Dimension order.
//
// Errors: InvalidArgument on a bad position.
Result<std::vector<CellContribution>> TopContributingCells(
    const UnfairnessCube& cube, Dimension dim, size_t pos, size_t k);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_EXPLAIN_H_
