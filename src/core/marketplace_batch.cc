#include "core/marketplace_batch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/trace.h"
#include "ranking/exposure.h"
#include "ranking/histogram.h"
#include "ranking/simd.h"

namespace fairjob {
namespace {

// Membership-table observability: table builds per dataset version, Update
// extensions, and how many (group × worker) labels were evaluated — the work
// the per-cell paths no longer do.
Counter* MembershipBuilds() {
  static Counter* const counter = MetricsRegistry::Global().counter(
      "cube.market.batch.membership_builds");
  return counter;
}
Counter* MembershipUpdates() {
  static Counter* const counter = MetricsRegistry::Global().counter(
      "cube.market.batch.membership_updates");
  return counter;
}
Counter* MembershipWorkersLabeled() {
  static Counter* const counter = MetricsRegistry::Global().counter(
      "cube.market.batch.membership_workers_labeled");
  return counter;
}
Counter* BatchCells() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("cube.market.batch.cells");
  return counter;
}

// The same kernel series the per-cell paths feed (measure.emd.* /
// measure.exposure.*), so dashboards keep one view of invocation totals
// whichever engine built the cube.
Counter* EmdInvocations() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.emd.invocations");
  return counter;
}
Counter* ExposureInvocations() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.exposure.invocations");
  return counter;
}
LatencyHistogram* ExposureLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("measure.exposure.latency_us");
  return histogram;
}

}  // namespace

MarketplaceGroupMembership::MarketplaceGroupMembership(
    const MarketplaceDataset& data, const GroupSpace& space)
    : num_workers_(data.num_workers()),
      num_groups_(space.num_groups()),
      words_per_group_((data.num_workers() + 63) / 64) {
  words_.assign(num_groups_ * words_per_group_, 0);
  LabelNewWorkers(data, space, 0);
  MembershipBuilds()->Add(1);
}

void MarketplaceGroupMembership::Update(const MarketplaceDataset& data,
                                        const GroupSpace& space) {
  size_t old_workers = num_workers_;
  size_t new_workers = data.num_workers();
  if (new_workers == old_workers) return;
  size_t new_words = (new_workers + 63) / 64;
  if (new_words != words_per_group_) {
    // Re-stride: each row's existing words move to the new row start; the
    // layout stays the pure function of the worker count that makes an
    // updated table equal a freshly built one.
    std::vector<uint64_t> grown(num_groups_ * new_words, 0);
    for (size_t g = 0; g < num_groups_; ++g) {
      std::copy_n(words_.data() + g * words_per_group_, words_per_group_,
                  grown.data() + g * new_words);
    }
    words_ = std::move(grown);
    words_per_group_ = new_words;
  }
  num_workers_ = new_workers;
  LabelNewWorkers(data, space, old_workers);
  MembershipUpdates()->Add(1);
}

void MarketplaceGroupMembership::LabelNewWorkers(const MarketplaceDataset& data,
                                                 const GroupSpace& space,
                                                 size_t first) {
  for (size_t g = 0; g < num_groups_; ++g) {
    const GroupLabel& label = space.label(static_cast<GroupId>(g));
    uint64_t* row = words_.data() + g * words_per_group_;
    for (size_t w = first; w < num_workers_; ++w) {
      if (label.Matches(
              data.worker_demographics(static_cast<WorkerId>(w)))) {
        row[w >> 6] |= uint64_t{1} << (w & 63);
      }
    }
  }
  MembershipWorkersLabeled()->Add(num_workers_ - first);
}

Result<MarketplaceCellBatch> MarketplaceCellBatch::Make(
    const GroupSpace& space, const MarketplaceGroupMembership& membership,
    const MarketRanking* ranking, MarketMeasure measure,
    const MeasureOptions& options) {
  FAIRJOB_RETURN_IF_ERROR(ValidateMarketplaceOptions(options));
  if (ranking == nullptr || ranking->workers.empty()) {
    return Status::NotFound("no ranking observed for this (query, location)");
  }
  if (measure != MarketMeasure::kEmd && measure != MarketMeasure::kExposure) {
    return Status::InvalidArgument("unknown marketplace measure");
  }

  size_t n = ranking->workers.size();
  // Probe arena: the membership word index and mask of each ranked worker,
  // computed once and reused across the whole group sweep.
  std::vector<uint32_t> probe_word(n);
  std::vector<uint64_t> probe_mask(n);
  for (size_t i = 0; i < n; ++i) {
    size_t worker = static_cast<size_t>(ranking->workers[i]);
    if (worker >= membership.num_workers()) {
      return Status::InvalidArgument(
          "membership table does not cover this ranking's workers (update it "
          "after adding workers)");
    }
    probe_word[i] = static_cast<uint32_t>(worker >> 6);
    probe_mask[i] = uint64_t{1} << (worker & 63);
  }
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<double> values,
                           MarketplaceWorkerValues(*ranking, options));

  MarketplaceCellBatch batch;
  batch.space_ = &space;
  batch.measure_ = measure;
  size_t num_groups = space.num_groups();
  batch.member_counts_.assign(num_groups, 0);

  // Per-group position bitmap: bit i = "the worker at ranking position i is
  // a member". Rebuilt per group in place; the simd:: kernels sweep it.
  size_t pos_words = (n + 63) / 64;
  std::vector<uint64_t> posbits(pos_words);
  auto sweep_members = [&](GroupId g) {
    std::fill(posbits.begin(), posbits.end(), 0);
    const uint64_t* group_row = membership.group_bits(g);
    for (size_t i = 0; i < n; ++i) {
      if (group_row[probe_word[i]] & probe_mask[i]) {
        posbits[i >> 6] |= uint64_t{1} << (i & 63);
      }
    }
  };

  if (measure == MarketMeasure::kEmd) {
    batch.bins_ = options.histogram_bins;
    batch.renormalized_.assign(num_groups * batch.bins_, 0.0);
    // Bin index of every position, computed once per cell instead of once
    // per (group, position) Histogram::Add.
    FAIRJOB_ASSIGN_OR_RETURN(
        Histogram layout, Histogram::Make(options.histogram_bins, 0.0, 1.0));
    std::vector<int32_t> bin_of(n);
    for (size_t i = 0; i < n; ++i) {
      bin_of[i] = static_cast<int32_t>(layout.BinOf(values[i]));
    }
    std::vector<uint32_t> counts(batch.bins_);
    for (size_t g = 0; g < num_groups; ++g) {
      sweep_members(static_cast<GroupId>(g));
      size_t members = 0;
      for (uint64_t word : posbits) {
        members += static_cast<size_t>(std::popcount(word));
      }
      batch.member_counts_[g] = static_cast<uint32_t>(members);
      if (members == 0) continue;
      std::fill(counts.begin(), counts.end(), 0);
      simd::MaskedBinCount(posbits.data(), pos_words, bin_of.data(),
                           counts.data());
      // Precompute the group's renormalized distribution: integer counts are
      // exact in double, so counts[b] / members is bitwise what
      // Histogram::Normalized() returns after `members` Add(1.0) calls, and
      // the second normalization replays Emd1D's ValidateAndNormalize (sum
      // in index order, then divide) — making every later pair O(bins_) with
      // identical FP terms.
      double* row = batch.renormalized_.data() + g * batch.bins_;
      double total = static_cast<double>(members);
      double renorm_total = 0.0;
      for (size_t b = 0; b < batch.bins_; ++b) {
        row[b] = static_cast<double>(counts[b]) / total;
      }
      for (size_t b = 0; b < batch.bins_; ++b) renorm_total += row[b];
      for (size_t b = 0; b < batch.bins_; ++b) row[b] /= renorm_total;
    }
  } else {
    batch.exposure_sums_.assign(num_groups, 0.0);
    batch.relevance_sums_.assign(num_groups, 0.0);
    // Position bias per position, from the shared memo table (log-inverse)
    // or one local power-law fill — either way the per-position value is the
    // exact double PositionBias computes in the per-cell paths.
    PositionBiasTable::View log_view;
    std::vector<double> power_bias;
    const double* bias_at = nullptr;
    if (options.exposure_model == ExposureModel::kLogInverse) {
      log_view = PositionBiasTable::LogInverse(n);
      bias_at = log_view.bias;
    } else {
      power_bias.resize(n);
      for (size_t i = 0; i < n; ++i) {
        power_bias[i] = ExposureAtRankPower(i + 1, options.exposure_gamma);
      }
      bias_at = power_bias.data();
    }
    std::vector<int32_t> positions(n);
    for (size_t g = 0; g < num_groups; ++g) {
      sweep_members(static_cast<GroupId>(g));
      size_t members =
          simd::CompressPositions(posbits.data(), pos_words, positions.data());
      batch.member_counts_[g] = static_cast<uint32_t>(members);
      if (members == 0) continue;
      // Ascending positions, separate accumulators — the exact term order of
      // MarketplaceCellContext::Make's interleaved loop.
      double exposure_sum = 0.0;
      double relevance_sum = 0.0;
      for (size_t k = 0; k < members; ++k) {
        int32_t pos = positions[k];
        exposure_sum += bias_at[pos];
        relevance_sum += values[static_cast<size_t>(pos)];
      }
      batch.exposure_sums_[g] = exposure_sum;
      batch.relevance_sums_[g] = relevance_sum;
    }
  }
  BatchCells()->Add(1);
  return batch;
}

Result<double> MarketplaceCellBatch::Unfairness(GroupId g) const {
  switch (measure_) {
    case MarketMeasure::kEmd:
      return Emd(g);
    case MarketMeasure::kExposure:
      return Exposure(g);
  }
  return Status::InvalidArgument("unknown marketplace measure");
}

Result<double> MarketplaceCellBatch::Emd(GroupId g) const {
  const size_t gi = static_cast<size_t>(g);
  if (member_counts_[gi] == 0) {
    return Status::NotFound("group has no members in this ranking");
  }
  const double* own = renormalized_.data() + gi * bins_;
  double sum = 0.0;
  size_t counted = 0;
  for (GroupId other : space_->Comparables(g)) {
    const size_t oi = static_cast<size_t>(other);
    if (member_counts_[oi] == 0) continue;
    const double* theirs = renormalized_.data() + oi * bins_;
    // Emd1D's CDF walk over the precomputed renormalized rows; a single bin
    // means zero ground distance, as in the reference.
    double emd = 0.0;
    if (bins_ > 1) {
      double cum = 0.0;
      for (size_t b = 0; b + 1 < bins_; ++b) {
        cum += own[b] - theirs[b];
        emd += std::fabs(cum);
      }
      emd /= static_cast<double>(bins_ - 1);
    }
    sum += emd;
    ++counted;
  }
  if (counted == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  // One bulk add per cell row keeps the invocation totals identical to the
  // per-pair paths; per-pair latency sampling is intentionally absent, like
  // the batched search path (cube.market.column_us covers the phase).
  EmdInvocations()->Add(counted);
  return sum / static_cast<double>(counted);
}

Result<double> MarketplaceCellBatch::Exposure(GroupId g) const {
  const size_t gi = static_cast<size_t>(g);
  if (member_counts_[gi] == 0) {
    return Status::NotFound("group has no members in this ranking");
  }
  ExposureInvocations()->Add(1);
  ScopedTimer timer(ExposureLatency());
  double own_exp = exposure_sums_[gi];
  double own_rel = relevance_sums_[gi];
  double exp_denominator = own_exp;
  double rel_denominator = own_rel;
  size_t comparable_members = 0;
  for (GroupId other : space_->Comparables(g)) {
    const size_t oi = static_cast<size_t>(other);
    comparable_members += member_counts_[oi];
    exp_denominator += exposure_sums_[oi];
    rel_denominator += relevance_sums_[oi];
  }
  if (comparable_members == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  double exp_share = own_exp / exp_denominator;
  double rel_share = rel_denominator > 0.0 ? own_rel / rel_denominator : 0.0;
  return std::fabs(exp_share - rel_share);
}

}  // namespace fairjob
