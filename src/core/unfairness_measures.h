#ifndef FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_
#define FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"
#include "ranking/histogram.h"

namespace fairjob {

// Unfairness measures for online job marketplaces (Section 3.3): rankings of
// workers per (query, location).
enum class MarketMeasure {
  kEmd,       // avg EMD between relevance histograms of g and comparables
  kExposure,  // | exposure-share(g) − relevance-share(g) |, L1 deviation
};

// Unfairness measures for search engines (Section 3.2): personalized ranked
// lists per user. All are used as *distances* (higher = results diverge
// more across groups = more unfair); Jaccard is 1 − Jaccard index and RBO
// is 1 − RBO similarity. The paper evaluates the first two; footrule and
// RBO are extension measures for cross-measure agreement studies.
enum class SearchMeasure {
  kKendallTau,  // generalized top-k Kendall-Tau distance (Fagin et al.)
  kJaccard,     // Jaccard distance between result sets
  kFootrule,    // induced top-k Spearman footrule F^(ℓ) (Fagin et al.)
  kRbo,         // 1 − rank-biased overlap (Webber et al.)
};

const char* MarketMeasureName(MarketMeasure m);
const char* SearchMeasureName(SearchMeasure m);

// Position-bias curve behind the exposure measure.
enum class ExposureModel {
  kLogInverse,  // 1 / ln(1 + rank) — the paper's Figure 5 curve (default)
  kPowerLaw,    // rank^(−gamma) — the classic click-model falloff
};

struct MeasureOptions {
  // Bin count of the relevance/score histogram fed to EMD.
  size_t histogram_bins = 10;
  // Exposure position-bias curve and its power-law steepness.
  ExposureModel exposure_model = ExposureModel::kLogInverse;
  double exposure_gamma = 1.0;
  // Penalty p of the generalized top-k Kendall-Tau (0 optimistic, 0.5
  // neutral).
  double kendall_penalty = 0.5;
  // Persistence p of RBO (top-weightedness; ~86% of weight on the top 10 at
  // 0.9).
  double rbo_persistence = 0.9;
  // EMD / exposure: use the site's scores f_q^l(w) when the ranking carries
  // them; otherwise (or when false) fall back to the rank-derived relevance
  // 1 − rank/N.
  bool use_scores_if_available = true;
};

// Option checks shared by every marketplace evaluation path (per-triple
// reference, cell-shared context, batched engine). Errors: InvalidArgument
// on malformed options.
Status ValidateMarketplaceOptions(const MeasureOptions& options);

// Per-worker value the marketplace measures operate on, parallel to
// `ranking.workers`: the site score when available (and wanted), else the
// rank-derived relevance 1 − rank/N.
Result<std::vector<double>> MarketplaceWorkerValues(
    const MarketRanking& ranking, const MeasureOptions& options);

// d<g,q,l> for a marketplace (Eq. 2 / Section 3.3). Averages the chosen
// distance between group g and each comparable group that has at least one
// member in the (q, l) ranking.
//
// Errors:
//  * NotFound — the triple is undefined: no ranking observed for (q, l), g
//    has no member in it, or no comparable group has members. Callers treat
//    this as a missing cube cell.
//  * InvalidArgument — malformed options.
Result<double> MarketplaceUnfairness(const MarketplaceDataset& data,
                                     const GroupSpace& space, GroupId g,
                                     QueryId q, LocationId l,
                                     MarketMeasure measure,
                                     const MeasureOptions& options = {});

// Shared per-(query, location) state for evaluating marketplace measures
// across a whole group axis. MarketplaceUnfairness recomputes worker values,
// group memberships and histograms from scratch for every (group,
// comparable) pair — O(G² · n) label matching per cell. Building this
// context once per cell does that work in O(G · n) (one membership pass
// evaluating every group label, one histogram and one exposure/relevance
// partial sum per group) and then derives every group's cell value from the
// shared state. Unfairness() reproduces MarketplaceUnfairness bitwise: both
// accumulate the same terms in the same order (cross-checked in tests).
//
// The context is immutable after Make and borrows nothing from the dataset,
// so it may be shared freely across threads.
class MarketplaceCellContext {
 public:
  // Precomputes the shared state for one (query, location) ranking.
  // `ranking` may be the (possibly null) result of
  // MarketplaceDataset::GetRanking. Errors: InvalidArgument on malformed
  // options; NotFound when ranking is null or empty (the whole column is
  // undefined — callers clear the cells).
  static Result<MarketplaceCellContext> Make(const MarketplaceDataset& data,
                                             const GroupSpace& space,
                                             const MarketRanking* ranking,
                                             const MeasureOptions& options);

  // d<g,q,l> for this cell; bitwise-identical to MarketplaceUnfairness on
  // the same triple. Errors: NotFound when the triple is undefined (g or
  // every comparable group has no members in the ranking).
  Result<double> Unfairness(GroupId g, MarketMeasure measure) const;

  // 0-based ranking positions of group g's members (ascending).
  const std::vector<size_t>& positions(GroupId g) const {
    return positions_[static_cast<size_t>(g)];
  }

 private:
  MarketplaceCellContext() = default;

  Result<double> Emd(GroupId g) const;
  Result<double> Exposure(GroupId g) const;

  const GroupSpace* space_ = nullptr;
  MeasureOptions options_;
  std::vector<double> values_;                  // per-position worker value
  std::vector<std::vector<size_t>> positions_;  // per-group member positions
  std::vector<Histogram> histograms_;           // per-group value histogram
  std::vector<double> exposure_sums_;           // per-group Σ position bias
  std::vector<double> relevance_sums_;          // per-group Σ worker value
};

// Distance between two personalized result lists under the chosen search
// measure (the DIST building block of Eq. 1). Errors: InvalidArgument on
// malformed lists or options.
Result<double> SearchListDistance(SearchMeasure measure, const RankedList& a,
                                  const RankedList& b,
                                  const MeasureOptions& options = {});

// d<g,q,l> for a search engine (Eq. 1 / Section 3.2). Averages, over each
// comparable group g' with observations, the mean pairwise distance between
// result lists of g-members and g'-members.
//
// Errors: as above.
Result<double> SearchUnfairness(const SearchDataset& data,
                                const GroupSpace& space, GroupId g, QueryId q,
                                LocationId l, SearchMeasure measure,
                                const MeasureOptions& options = {});

}  // namespace fairjob

#endif  // FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_
