#ifndef FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_
#define FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"

namespace fairjob {

// Unfairness measures for online job marketplaces (Section 3.3): rankings of
// workers per (query, location).
enum class MarketMeasure {
  kEmd,       // avg EMD between relevance histograms of g and comparables
  kExposure,  // | exposure-share(g) − relevance-share(g) |, L1 deviation
};

// Unfairness measures for search engines (Section 3.2): personalized ranked
// lists per user. All are used as *distances* (higher = results diverge
// more across groups = more unfair); Jaccard is 1 − Jaccard index and RBO
// is 1 − RBO similarity. The paper evaluates the first two; footrule and
// RBO are extension measures for cross-measure agreement studies.
enum class SearchMeasure {
  kKendallTau,  // generalized top-k Kendall-Tau distance (Fagin et al.)
  kJaccard,     // Jaccard distance between result sets
  kFootrule,    // induced top-k Spearman footrule F^(ℓ) (Fagin et al.)
  kRbo,         // 1 − rank-biased overlap (Webber et al.)
};

const char* MarketMeasureName(MarketMeasure m);
const char* SearchMeasureName(SearchMeasure m);

// Position-bias curve behind the exposure measure.
enum class ExposureModel {
  kLogInverse,  // 1 / ln(1 + rank) — the paper's Figure 5 curve (default)
  kPowerLaw,    // rank^(−gamma) — the classic click-model falloff
};

struct MeasureOptions {
  // Bin count of the relevance/score histogram fed to EMD.
  size_t histogram_bins = 10;
  // Exposure position-bias curve and its power-law steepness.
  ExposureModel exposure_model = ExposureModel::kLogInverse;
  double exposure_gamma = 1.0;
  // Penalty p of the generalized top-k Kendall-Tau (0 optimistic, 0.5
  // neutral).
  double kendall_penalty = 0.5;
  // Persistence p of RBO (top-weightedness; ~86% of weight on the top 10 at
  // 0.9).
  double rbo_persistence = 0.9;
  // EMD / exposure: use the site's scores f_q^l(w) when the ranking carries
  // them; otherwise (or when false) fall back to the rank-derived relevance
  // 1 − rank/N.
  bool use_scores_if_available = true;
};

// d<g,q,l> for a marketplace (Eq. 2 / Section 3.3). Averages the chosen
// distance between group g and each comparable group that has at least one
// member in the (q, l) ranking.
//
// Errors:
//  * NotFound — the triple is undefined: no ranking observed for (q, l), g
//    has no member in it, or no comparable group has members. Callers treat
//    this as a missing cube cell.
//  * InvalidArgument — malformed options.
Result<double> MarketplaceUnfairness(const MarketplaceDataset& data,
                                     const GroupSpace& space, GroupId g,
                                     QueryId q, LocationId l,
                                     MarketMeasure measure,
                                     const MeasureOptions& options = {});

// Distance between two personalized result lists under the chosen search
// measure (the DIST building block of Eq. 1). Errors: InvalidArgument on
// malformed lists or options.
Result<double> SearchListDistance(SearchMeasure measure, const RankedList& a,
                                  const RankedList& b,
                                  const MeasureOptions& options = {});

// d<g,q,l> for a search engine (Eq. 1 / Section 3.2). Averages, over each
// comparable group g' with observations, the mean pairwise distance between
// result lists of g-members and g'-members.
//
// Errors: as above.
Result<double> SearchUnfairness(const SearchDataset& data,
                                const GroupSpace& space, GroupId g, QueryId q,
                                LocationId l, SearchMeasure measure,
                                const MeasureOptions& options = {});

}  // namespace fairjob

#endif  // FAIRJOB_CORE_UNFAIRNESS_MEASURES_H_
