#ifndef FAIRJOB_CORE_REPORT_H_
#define FAIRJOB_CORE_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/coverage.h"
#include "core/fbox.h"

namespace fairjob {

// One-call audit report: renders an F-Box's findings as markdown — the
// quantification tables, a comparison of the two most contrasting groups
// with its reversal rows, the top contributing cells for the worst-treated
// group, and (optionally) bootstrap confidence intervals. Meant for the CLI
// (`audit --report out.md`) and for embedding audits in dashboards/PRs.
struct AuditReportOptions {
  std::string title = "Fairness audit";
  size_t top_k = 5;
  bool include_fairest = true;       // bottom-k sections as well
  size_t drilldown_cells = 5;        // 0 disables the cells section
  size_t bootstrap_resamples = 400;  // 0 disables confidence intervals
  double confidence = 0.95;
  uint64_t seed = 42;                // bootstrap reproducibility
  // Optional data-quality section (borrowed; may be null): low-support and
  // absent groups from AnalyzeMarketplaceCoverage / AnalyzeSearchCoverage.
  const CoverageReport* coverage = nullptr;
};

// Errors: InvalidArgument on a zero top_k; quantification errors propagate.
Result<std::string> GenerateAuditReport(const FBox& fbox,
                                        const AuditReportOptions& options);
Result<std::string> GenerateAuditReport(const FBox& fbox);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_REPORT_H_
