#include "core/group_space.h"

#include <algorithm>

#include "common/string_util.h"

namespace fairjob {
namespace {

constexpr size_t kMaxGroups = 1u << 20;

// Canonical key for display-name lookup: lowered value names, sorted, joined
// with a separator that cannot appear in names.
std::string DisplayKeyFromTokens(std::vector<std::string> tokens) {
  for (std::string& t : tokens) t = ToLower(t);
  std::sort(tokens.begin(), tokens.end());
  return Join(tokens, "\x1f");
}

}  // namespace

Result<GroupSpace> GroupSpace::Enumerate(const AttributeSchema& schema) {
  return EnumerateUpTo(schema, schema.num_attributes());
}

Result<GroupSpace> GroupSpace::EnumerateUpTo(const AttributeSchema& schema,
                                             size_t max_predicates) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("schema has no protected attributes");
  }
  if (max_predicates == 0) {
    return Status::InvalidArgument("max_predicates must be positive");
  }
  size_t combos = 1;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    combos *= schema.num_values(static_cast<AttributeId>(a)) + 1;
    if (combos > kMaxGroups) {
      return Status::InvalidArgument("group space too large (> 2^20 groups)");
    }
  }

  GroupSpace space(schema);
  // Mixed-radix counter over (num_values + 1) choices per attribute, where
  // choice 0 means "attribute unconstrained".
  size_t n_attrs = schema.num_attributes();
  std::vector<size_t> digits(n_attrs, 0);
  for (;;) {
    // Advance the counter (skip the all-unconstrained combination at start).
    size_t a = 0;
    while (a < n_attrs) {
      digits[a] += 1;
      if (digits[a] <=
          schema.num_values(static_cast<AttributeId>(a))) {
        break;
      }
      digits[a] = 0;
      ++a;
    }
    if (a == n_attrs) break;  // wrapped around: enumeration complete

    std::vector<GroupLabel::Predicate> preds;
    for (size_t i = 0; i < n_attrs; ++i) {
      if (digits[i] > 0) {
        preds.emplace_back(static_cast<AttributeId>(i),
                           static_cast<ValueId>(digits[i] - 1));
      }
    }
    if (preds.size() > max_predicates) continue;
    FAIRJOB_ASSIGN_OR_RETURN(GroupLabel label, GroupLabel::Make(std::move(preds)));
    GroupId id = static_cast<GroupId>(space.labels_.size());
    space.id_of_.emplace(label, id);

    std::vector<std::string> tokens;
    for (const auto& p : label.predicates()) {
      tokens.push_back(schema.value_name(p.first, p.second));
    }
    space.display_name_index_.emplace(DisplayKeyFromTokens(std::move(tokens)),
                                      id);
    space.labels_.push_back(std::move(label));
  }

  // Precompute comparable groups.
  space.comparables_.resize(space.labels_.size());
  for (size_t g = 0; g < space.labels_.size(); ++g) {
    std::vector<GroupId> comp;
    for (AttributeId a : space.labels_[g].Attributes()) {
      std::vector<GroupId> vars = space.Variants(static_cast<GroupId>(g), a);
      comp.insert(comp.end(), vars.begin(), vars.end());
    }
    std::sort(comp.begin(), comp.end());
    comp.erase(std::unique(comp.begin(), comp.end()), comp.end());
    space.comparables_[g] = std::move(comp);
  }
  return space;
}

Result<GroupId> GroupSpace::IdOf(const GroupLabel& label) const {
  auto it = id_of_.find(label);
  if (it == id_of_.end()) {
    return Status::NotFound("label '" + label.ToString(schema_) +
                            "' not in this group space");
  }
  return it->second;
}

Result<GroupId> GroupSpace::FindByDisplayName(std::string_view name) const {
  std::vector<std::string> tokens;
  for (const std::string& t : Split(name, ' ')) {
    if (!std::string_view(Trim(t)).empty()) tokens.emplace_back(Trim(t));
  }
  auto it = display_name_index_.find(DisplayKeyFromTokens(std::move(tokens)));
  if (it == display_name_index_.end()) {
    return Status::NotFound("no group with display name '" + std::string(name) +
                            "'");
  }
  return it->second;
}

std::vector<GroupId> GroupSpace::Variants(GroupId g, AttributeId a) const {
  const GroupLabel& base = label(g);
  std::vector<GroupId> out;
  if (!base.HasAttribute(a)) return out;
  ValueId current = base.ValueOf(a).value();
  size_t domain = schema_.num_values(a);
  out.reserve(domain - 1);
  for (size_t v = 0; v < domain; ++v) {
    if (static_cast<ValueId>(v) == current) continue;
    GroupLabel variant = base.WithValue(a, static_cast<ValueId>(v));
    auto it = id_of_.find(variant);
    if (it != id_of_.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<size_t> GroupSpace::MembersAmong(
    GroupId g, const std::vector<Demographics>& population) const {
  const GroupLabel& l = label(g);
  std::vector<size_t> out;
  for (size_t i = 0; i < population.size(); ++i) {
    if (l.Matches(population[i])) out.push_back(i);
  }
  return out;
}

}  // namespace fairjob
