#ifndef FAIRJOB_CORE_COVERAGE_H_
#define FAIRJOB_CORE_COVERAGE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"

namespace fairjob {

// Data-quality analysis for an audit: how well is each group represented in
// the observed rankings? Unfairness estimates for groups with 1–2 members
// per result list sit on a large small-sample floor (see
// docs/CALIBRATION.md), so any serious audit should check support before
// reading the top-k tables.

struct GroupCoverage {
  GroupId group = 0;
  // (query, location) observations in which the group has ≥1 member.
  size_t cells_with_members = 0;
  size_t cells_total = 0;
  // Member counts across the cells where the group appears.
  size_t min_members = 0;
  size_t max_members = 0;
  double mean_members = 0.0;
};

struct CoverageReport {
  std::vector<GroupCoverage> groups;  // by GroupId
  // Groups whose mean members-per-cell is below the support threshold (and
  // that appear at all) — their unfairness values are noise-dominated.
  std::vector<GroupId> low_support;
  // Groups absent from every observation.
  std::vector<GroupId> absent;
};

// Errors: InvalidArgument when the dataset has no observations.
Result<CoverageReport> AnalyzeMarketplaceCoverage(
    const MarketplaceDataset& data, const GroupSpace& space,
    double min_mean_members = 3.0);

// Search twin: members are a group's collected result lists per cell.
Result<CoverageReport> AnalyzeSearchCoverage(const SearchDataset& data,
                                             const GroupSpace& space,
                                             double min_mean_members = 3.0);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_COVERAGE_H_
