#include "core/fagin_family.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/trace.h"
#include "core/fagin_run_metrics.h"

namespace fairjob {
namespace {

using fagin_internal::MeteredRun;

bool Better(double a, double b, RankDirection dir) {
  return dir == RankDirection::kMostUnfair ? a > b : a < b;
}

void SortResults(std::vector<ScoredEntry>* out, RankDirection dir) {
  std::sort(out->begin(), out->end(),
            [dir](const ScoredEntry& a, const ScoredEntry& b) {
              if (a.value != b.value) return Better(a.value, b.value, dir);
              return a.pos < b.pos;
            });
}

Status Validate(const std::vector<const InvertedIndex*>& lists, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lists.empty()) {
    return Status::InvalidArgument("top-k needs at least one inverted list");
  }
  for (const InvertedIndex* list : lists) {
    if (list == nullptr) return Status::InvalidArgument("null inverted list");
  }
  return Status::OK();
}

std::optional<double> Aggregate(const std::vector<const InvertedIndex*>& lists,
                                int32_t pos, MissingCellPolicy policy,
                                FaginStats* stats) {
  double sum = 0.0;
  size_t present = 0;
  for (const InvertedIndex* list : lists) {
    if (stats != nullptr) ++stats->random_accesses;
    std::optional<double> v = list->Find(pos);
    if (v.has_value()) {
      sum += *v;
      ++present;
    }
  }
  if (present == 0) return std::nullopt;
  if (policy == MissingCellPolicy::kSkip) {
    return sum / static_cast<double>(present);
  }
  return sum / static_cast<double>(lists.size());
}

}  // namespace

const char* TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kThresholdAlgorithm:
      return "TA";
    case TopKAlgorithm::kFA:
      return "FA";
    case TopKAlgorithm::kNRA:
      return "NRA";
    case TopKAlgorithm::kScan:
      return "scan";
  }
  return "?";
}

Result<std::vector<ScoredEntry>> FaginFA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  TraceSpan span("FaginFA", "fagin");
  MeteredRun run("fa", &stats);
  bool most = options.direction == RankDirection::kMostUnfair;
  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  auto is_allowed = [&](int32_t pos) {
    return options.allowed == nullptr || allowed.count(pos) > 0;
  };

  // Phase 1: round-robin sorted access until k (allowed) ids have been seen
  // on every list, or all lists are exhausted. Early stopping is only sound
  // under kZero semantics (see header); under kSkip we read everything.
  std::vector<size_t> cursors(lists.size(), 0);
  std::unordered_map<int32_t, size_t> lists_seen;
  size_t complete_ids = 0;
  bool can_stop_early = options.missing == MissingCellPolicy::kZero;
  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      size_t at = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i]->entry(at);
      ++cursors[i];
      if (stats != nullptr) ++stats->sorted_accesses;
      any_read = true;
      if (!is_allowed(e.pos)) continue;
      size_t seen = ++lists_seen[e.pos];
      if (seen == lists.size()) ++complete_ids;
    }
    if (!any_read) break;
    ++stats->rounds;
    if (can_stop_early) {
      ++stats->threshold_checks;
      if (complete_ids >= options.k) break;
    }
  }

  // Phase 2: random access to score every seen id.
  std::vector<ScoredEntry> scored;
  scored.reserve(lists_seen.size());
  for (const auto& [pos, seen] : lists_seen) {
    std::optional<double> agg = Aggregate(lists, pos, options.missing, stats);
    if (agg.has_value()) {
      if (stats != nullptr) ++stats->ids_scored;
      scored.push_back(ScoredEntry{pos, *agg});
    }
  }
  SortResults(&scored, options.direction);
  if (scored.size() > options.k) scored.resize(options.k);
  return scored;
}

Result<std::vector<ScoredEntry>> FaginNRA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(Validate(lists, options.k));
  if (options.missing != MissingCellPolicy::kZero) {
    return Status::InvalidArgument(
        "NRA bounds require MissingCellPolicy::kZero (the average over "
        "present lists is not monotone in the unknown entries)");
  }
  if (options.direction != RankDirection::kMostUnfair) {
    return Status::InvalidArgument(
        "NRA supports kMostUnfair only; use TA or the scan for bottom-k");
  }
  TraceSpan span("FaginNRA", "fagin");
  MeteredRun run("nra", &stats);
  std::unordered_set<int32_t> allowed;
  if (options.allowed != nullptr) {
    allowed.insert(options.allowed->begin(), options.allowed->end());
  }
  auto is_allowed = [&](int32_t pos) {
    return options.allowed == nullptr || allowed.count(pos) > 0;
  };

  const size_t num_lists = lists.size();
  const double denom = static_cast<double>(num_lists);
  struct Candidate {
    double known_sum = 0.0;
    // Bitmask of lists whose value is known (sorted access saw this id).
    uint64_t known_mask = 0;
  };
  if (num_lists > 64) {
    return Status::InvalidArgument("NRA supports at most 64 lists");
  }
  std::unordered_map<int32_t, Candidate> candidates;
  std::vector<size_t> cursors(num_lists, 0);

  auto frontier = [&](size_t i) -> double {
    if (cursors[i] >= lists[i]->size()) return 0.0;  // exhausted: rest is 0
    return std::max(lists[i]->entry(cursors[i]).value, 0.0);
  };

  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < num_lists; ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      const ScoredEntry& e = lists[i]->entry(cursors[i]);
      ++cursors[i];
      if (stats != nullptr) ++stats->sorted_accesses;
      any_read = true;
      if (!is_allowed(e.pos)) continue;
      Candidate& c = candidates[e.pos];
      c.known_sum += e.value;
      c.known_mask |= (1ull << i);
    }
    if (!any_read) break;
    ++stats->rounds;

    if (candidates.size() < options.k) continue;
    ++stats->threshold_checks;

    // Lower bound: unknown entries contribute 0 (kZero). Upper bound:
    // unknown entries are at most the list frontier.
    double frontier_sum = 0.0;
    for (size_t i = 0; i < num_lists; ++i) frontier_sum += frontier(i);

    // k-th best lower bound.
    std::vector<std::pair<double, int32_t>> lowers;
    lowers.reserve(candidates.size());
    for (const auto& [pos, c] : candidates) {
      lowers.emplace_back(c.known_sum / denom, pos);
    }
    std::nth_element(
        lowers.begin(), lowers.begin() + static_cast<long>(options.k - 1),
        lowers.end(), [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
    double kth_lower = lowers[options.k - 1].first;
    std::unordered_set<int32_t> top_positions;
    for (size_t i = 0; i < options.k; ++i) top_positions.insert(lowers[i].second);

    // Upper bound of any id outside the current top-k (seen or unseen).
    double outside_upper = frontier_sum / denom;  // fully unseen id
    for (const auto& [pos, c] : candidates) {
      if (top_positions.count(pos) > 0) continue;
      double upper = c.known_sum;
      for (size_t i = 0; i < num_lists; ++i) {
        if ((c.known_mask & (1ull << i)) == 0) upper += frontier(i);
      }
      outside_upper = std::max(outside_upper, upper / denom);
    }
    if (kth_lower >= outside_upper) {
      // The top-k id set is final. Resolve exact aggregates for those ids
      // (a pragmatic k·L random-access epilogue; classic NRA would return
      // bounds).
      std::vector<ScoredEntry> out;
      out.reserve(options.k);
      for (int32_t pos : top_positions) {
        std::optional<double> agg =
            Aggregate(lists, pos, options.missing, stats);
        if (agg.has_value()) {
          if (stats != nullptr) ++stats->ids_scored;
          out.push_back(ScoredEntry{pos, *agg});
        }
      }
      SortResults(&out, options.direction);
      return out;
    }
  }

  // Lists exhausted: every candidate's aggregate is fully known.
  std::vector<ScoredEntry> out;
  out.reserve(candidates.size());
  for (const auto& [pos, c] : candidates) {
    if (stats != nullptr) ++stats->ids_scored;
    out.push_back(ScoredEntry{pos, c.known_sum / denom});
  }
  SortResults(&out, options.direction);
  if (out.size() > options.k) out.resize(options.k);
  return out;
}

Result<std::vector<ScoredEntry>> RunTopK(
    TopKAlgorithm algorithm, const std::vector<const InvertedIndex*>& lists,
    const TopKOptions& options, FaginStats* stats) {
  switch (algorithm) {
    case TopKAlgorithm::kThresholdAlgorithm:
      return FaginTopK(lists, options, stats);
    case TopKAlgorithm::kFA:
      return FaginFA(lists, options, stats);
    case TopKAlgorithm::kNRA:
      return FaginNRA(lists, options, stats);
    case TopKAlgorithm::kScan:
      return ScanTopK(lists, options, stats);
  }
  return Status::InvalidArgument("unknown top-k algorithm");
}

}  // namespace fairjob
