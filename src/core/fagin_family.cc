#include "core/fagin_family.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/trace.h"
#include "core/fagin_dense.h"
#include "core/fagin_run_metrics.h"

namespace fairjob {
namespace {

using fagin_internal::BuildAllowedBitmap;
using fagin_internal::DenseAggregate;
using fagin_internal::IsAllowed;
using fagin_internal::MeteredRun;
using fagin_internal::ScoreCandidates;
using fagin_internal::SortResults;
using fagin_internal::UniverseOf;
using fagin_internal::ValidateTopK;

}  // namespace

const char* TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kThresholdAlgorithm:
      return "TA";
    case TopKAlgorithm::kFA:
      return "FA";
    case TopKAlgorithm::kNRA:
      return "NRA";
    case TopKAlgorithm::kScan:
      return "scan";
  }
  return "?";
}

Result<std::vector<ScoredEntry>> FaginFA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(ValidateTopK(lists, options.k));
  TraceSpan span("FaginFA", "fagin");
  MeteredRun run("fa", &stats);
  bool most = options.direction == RankDirection::kMostUnfair;

  const size_t universe = UniverseOf(lists, options.universe_hint);
  std::vector<uint8_t> allowed_scratch;
  const uint8_t* allowed =
      BuildAllowedBitmap(options.allowed, universe, &allowed_scratch);

  // Phase 1: round-robin sorted access until k (allowed) ids have been seen
  // on every list, or all lists are exhausted. Early stopping is only sound
  // under kZero semantics (see header); under kSkip we read everything.
  // Per-position sorted-access counts live in a flat array.
  std::vector<size_t> cursors(lists.size(), 0);
  std::vector<uint32_t> seen_count(universe, 0);
  size_t complete_ids = 0;
  bool can_stop_early = options.missing == MissingCellPolicy::kZero;
  for (;;) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      size_t at = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i]->entry(at);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!IsAllowed(allowed, e.pos)) continue;
      uint32_t seen = ++seen_count[static_cast<size_t>(e.pos)];
      if (seen == lists.size()) ++complete_ids;
    }
    if (!any_read) break;
    ++stats->rounds;
    if (can_stop_early) {
      ++stats->threshold_checks;
      if (complete_ids >= options.k) break;
    }
  }

  // Phase 2: random access to score every seen id, ascending by position.
  std::vector<uint8_t> candidates(universe, 0);
  for (size_t pos = 0; pos < universe; ++pos) {
    if (seen_count[pos] > 0) candidates[pos] = 1;
  }
  std::vector<ScoredEntry> scored;
  ScoreCandidates(lists, universe, candidates, options.missing, stats,
                  &scored);
  SortResults(&scored, options.direction);
  if (scored.size() > options.k) scored.resize(options.k);
  return scored;
}

Result<std::vector<ScoredEntry>> FaginNRA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats) {
  FAIRJOB_RETURN_IF_ERROR(ValidateTopK(lists, options.k));
  if (options.missing != MissingCellPolicy::kZero) {
    return Status::InvalidArgument(
        "NRA bounds require MissingCellPolicy::kZero (the average over "
        "present lists is not monotone in the unknown entries)");
  }
  if (options.direction != RankDirection::kMostUnfair) {
    return Status::InvalidArgument(
        "NRA supports kMostUnfair only; use TA or the scan for bottom-k");
  }
  TraceSpan span("FaginNRA", "fagin");
  MeteredRun run("nra", &stats);

  const size_t num_lists = lists.size();
  const double denom = static_cast<double>(num_lists);
  if (num_lists > 64) {
    return Status::InvalidArgument("NRA supports at most 64 lists");
  }

  const size_t universe = UniverseOf(lists, options.universe_hint);
  std::vector<uint8_t> allowed_scratch;
  const uint8_t* allowed =
      BuildAllowedBitmap(options.allowed, universe, &allowed_scratch);

  // Candidate bookkeeping in flat position-indexed arrays: the partial sum
  // of known entries, its /denom quotient (the lower bound, cached so each
  // threshold check reads it instead of re-dividing per candidate — the
  // quotient only changes when sorted access touches the position), and a
  // bitmask of the lists sorted access has seen. `seen_positions` records
  // first-touch order so threshold checks iterate candidates, not the whole
  // axis.
  std::vector<double> known_sum(universe, 0.0);
  std::vector<double> lower_bound(universe, 0.0);
  std::vector<uint64_t> known_mask(universe, 0);
  std::vector<int32_t> seen_positions;
  std::vector<uint8_t> in_top(universe, 0);
  std::vector<size_t> cursors(num_lists, 0);

  auto frontier = [&](size_t i) -> double {
    if (cursors[i] >= lists[i]->size()) return 0.0;  // exhausted: rest is 0
    return std::max(lists[i]->entry(cursors[i]).value, 0.0);
  };
  // Reused across threshold checks (frontiers are constant within a check;
  // lowers keeps its capacity) so the per-round bookkeeping allocates once.
  std::vector<double> frontiers(num_lists, 0.0);
  std::vector<std::pair<double, int32_t>> lowers;

  // Lower bounds are compared under the total order (value desc, pos asc),
  // which makes the current top-k set unique — any selection method yields
  // the same set. When every list value is non-negative (lists are sorted
  // descending, so the tail entry is the minimum) the bounds are monotone
  // non-decreasing, and the top-k can be maintained incrementally from the
  // <= num_lists positions touched per round — O(k) per check instead of
  // rebuilding + selecting over all candidates. Negative values fall back
  // to the per-check nth_element.
  auto lower_cmp = [](const std::pair<double, int32_t>& a,
                      const std::pair<double, int32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  bool monotone = true;
  for (const InvertedIndex* list : lists) {
    if (!list->empty() && list->entry(list->size() - 1).value < 0.0) {
      monotone = false;
      break;
    }
  }
  std::vector<std::pair<double, int32_t>> top;  // sorted by lower_cmp
  bool top_built = false;
  std::vector<int32_t> touched;  // positions updated this round

  for (;;) {
    bool any_read = false;
    touched.clear();
    for (size_t i = 0; i < num_lists; ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      const ScoredEntry& e = lists[i]->entry(cursors[i]);
      ++cursors[i];
      ++stats->sorted_accesses;
      any_read = true;
      if (!IsAllowed(allowed, e.pos)) continue;
      size_t p = static_cast<size_t>(e.pos);
      if (known_mask[p] == 0) seen_positions.push_back(e.pos);
      known_sum[p] += e.value;
      lower_bound[p] = known_sum[p] / denom;
      known_mask[p] |= (1ull << i);
      if (top_built) touched.push_back(e.pos);
    }
    if (!any_read) break;
    ++stats->rounds;

    if (seen_positions.size() < options.k) continue;
    ++stats->threshold_checks;

    // Lower bound: unknown entries contribute 0 (kZero). Upper bound:
    // unknown entries are at most the list frontier.
    double frontier_sum = 0.0;
    for (size_t i = 0; i < num_lists; ++i) {
      frontiers[i] = frontier(i);
      frontier_sum += frontiers[i];
    }

    // k-th best lower bound.
    double kth_lower;
    if (monotone) {
      if (!top_built) {
        // Bootstrap from the full candidate set once; incremental from here.
        lowers.clear();
        lowers.reserve(seen_positions.size());
        for (int32_t pos : seen_positions) {
          lowers.emplace_back(lower_bound[static_cast<size_t>(pos)], pos);
        }
        std::partial_sort(lowers.begin(),
                          lowers.begin() + static_cast<long>(options.k),
                          lowers.end(), lower_cmp);
        top.assign(lowers.begin(),
                   lowers.begin() + static_cast<long>(options.k));
        for (const auto& entry : top) {
          in_top[static_cast<size_t>(entry.second)] = 1;
        }
        top_built = true;
      } else {
        // Only touched positions can enter or move (bounds never decrease
        // and untouched members keep their keys). Duplicates are harmless:
        // reprocessing reads the same final lower bound.
        for (int32_t pos : touched) {
          size_t p = static_cast<size_t>(pos);
          std::pair<double, int32_t> key{lower_bound[p], pos};
          if (in_top[p] != 0) {
            size_t j = 0;
            while (top[j].second != pos) ++j;
            top[j] = key;
            for (; j > 0 && lower_cmp(top[j], top[j - 1]); --j) {
              std::swap(top[j], top[j - 1]);
            }
          } else if (lower_cmp(key, top.back())) {
            in_top[static_cast<size_t>(top.back().second)] = 0;
            top.back() = key;
            in_top[p] = 1;
            for (size_t j = top.size() - 1;
                 j > 0 && lower_cmp(top[j], top[j - 1]); --j) {
              std::swap(top[j], top[j - 1]);
            }
          }
        }
      }
      kth_lower = top.back().first;
    } else {
      lowers.clear();
      lowers.reserve(seen_positions.size());
      for (int32_t pos : seen_positions) {
        lowers.emplace_back(lower_bound[static_cast<size_t>(pos)], pos);
      }
      std::nth_element(lowers.begin(),
                       lowers.begin() + static_cast<long>(options.k - 1),
                       lowers.end(), lower_cmp);
      kth_lower = lowers[options.k - 1].first;
      for (size_t i = 0; i < options.k; ++i) {
        in_top[static_cast<size_t>(lowers[i].second)] = 1;
      }
    }

    // Upper bound of any id outside the current top-k (seen or unseen).
    // The max is taken over the raw sums and divided once at the end:
    // correctly-rounded division by a positive constant is monotone, so it
    // commutes with max and the quotient is bitwise-identical to dividing
    // each term.
    double outside_upper_raw = frontier_sum;  // fully unseen id
    for (int32_t pos : seen_positions) {
      size_t p = static_cast<size_t>(pos);
      if (in_top[p] != 0) continue;
      double upper = known_sum[p];
      for (size_t i = 0; i < num_lists; ++i) {
        if ((known_mask[p] & (1ull << i)) == 0) upper += frontiers[i];
      }
      outside_upper_raw = std::max(outside_upper_raw, upper);
    }
    double outside_upper = outside_upper_raw / denom;
    bool done = kth_lower >= outside_upper;
    if (done) {
      // The top-k id set is final. Resolve exact aggregates for those ids
      // (a pragmatic k·L random-access epilogue; classic NRA would return
      // bounds).
      std::vector<ScoredEntry> out;
      out.reserve(options.k);
      for (size_t i = 0; i < options.k; ++i) {
        int32_t pos = monotone ? top[i].second : lowers[i].second;
        std::optional<double> agg =
            DenseAggregate(lists, pos, options.missing, stats);
        if (agg.has_value()) {
          ++stats->ids_scored;
          out.push_back(ScoredEntry{pos, *agg});
        }
      }
      SortResults(&out, options.direction);
      return out;
    }
    // The incremental top keeps its marks; the fallback rebuilds each check,
    // so reset only the k marked slots (a full clear would be O(universe)).
    if (!monotone) {
      for (size_t i = 0; i < options.k; ++i) {
        in_top[static_cast<size_t>(lowers[i].second)] = 0;
      }
    }
  }

  // Lists exhausted: every candidate's aggregate is fully known.
  std::vector<ScoredEntry> out;
  out.reserve(seen_positions.size());
  for (int32_t pos : seen_positions) {
    ++stats->ids_scored;
    out.push_back(
        ScoredEntry{pos, known_sum[static_cast<size_t>(pos)] / denom});
  }
  SortResults(&out, options.direction);
  if (out.size() > options.k) out.resize(options.k);
  return out;
}

Result<std::vector<ScoredEntry>> RunTopK(
    TopKAlgorithm algorithm, const std::vector<const InvertedIndex*>& lists,
    const TopKOptions& options, FaginStats* stats) {
  switch (algorithm) {
    case TopKAlgorithm::kThresholdAlgorithm:
      return FaginTopK(lists, options, stats);
    case TopKAlgorithm::kFA:
      return FaginFA(lists, options, stats);
    case TopKAlgorithm::kNRA:
      return FaginNRA(lists, options, stats);
    case TopKAlgorithm::kScan:
      return ScanTopK(lists, options, stats);
  }
  return Status::InvalidArgument("unknown top-k algorithm");
}

}  // namespace fairjob
