#include "core/group.h"

#include <algorithm>

#include "common/string_util.h"

namespace fairjob {

Result<GroupLabel> GroupLabel::Make(std::vector<Predicate> predicates) {
  if (predicates.empty()) {
    return Status::InvalidArgument("a group label needs at least one predicate");
  }
  std::sort(predicates.begin(), predicates.end());
  for (size_t i = 1; i < predicates.size(); ++i) {
    if (predicates[i].first == predicates[i - 1].first) {
      return Status::InvalidArgument(
          "group label constrains attribute " +
          std::to_string(predicates[i].first) + " twice");
    }
  }
  return GroupLabel(std::move(predicates));
}

Result<GroupLabel> GroupLabel::Parse(std::string_view text,
                                     const AttributeSchema& schema) {
  // Normalize the three accepted conjunction spellings to a single '&'.
  std::string normalized(text);
  // UTF-8 "∧" is E2 88 A7.
  size_t at;
  while ((at = normalized.find("\xE2\x88\xA7")) != std::string::npos) {
    normalized.replace(at, 3, "&");
  }
  while ((at = normalized.find("&&")) != std::string::npos) {
    normalized.replace(at, 2, "&");
  }

  std::vector<Predicate> predicates;
  for (const std::string& raw : Split(normalized, '&')) {
    std::string_view term = Trim(raw);
    if (term.empty()) {
      return Status::InvalidArgument("empty conjunct in group label '" +
                                     std::string(text) + "'");
    }
    size_t eq = term.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("conjunct '" + std::string(term) +
                                     "' is not of the form attribute=value");
    }
    std::string_view attr_name = Trim(term.substr(0, eq));
    std::string_view value_name = Trim(term.substr(eq + 1));
    FAIRJOB_ASSIGN_OR_RETURN(AttributeId attr, schema.FindAttribute(attr_name));
    FAIRJOB_ASSIGN_OR_RETURN(ValueId value, schema.FindValue(attr, value_name));
    predicates.emplace_back(attr, value);
  }
  return Make(std::move(predicates));
}

std::vector<AttributeId> GroupLabel::Attributes() const {
  std::vector<AttributeId> out;
  out.reserve(predicates_.size());
  for (const Predicate& p : predicates_) out.push_back(p.first);
  return out;
}

bool GroupLabel::HasAttribute(AttributeId a) const {
  for (const Predicate& p : predicates_) {
    if (p.first == a) return true;
  }
  return false;
}

Result<ValueId> GroupLabel::ValueOf(AttributeId a) const {
  for (const Predicate& p : predicates_) {
    if (p.first == a) return p.second;
  }
  return Status::NotFound("label does not constrain attribute " +
                          std::to_string(a));
}

GroupLabel GroupLabel::WithValue(AttributeId a, ValueId v) const {
  std::vector<Predicate> preds = predicates_;
  bool replaced = false;
  for (Predicate& p : preds) {
    if (p.first == a) {
      p.second = v;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    preds.emplace_back(a, v);
    std::sort(preds.begin(), preds.end());
  }
  return GroupLabel(std::move(preds));
}

bool GroupLabel::Matches(const Demographics& d) const {
  for (const Predicate& p : predicates_) {
    if (static_cast<size_t>(p.first) >= d.size() ||
        d[static_cast<size_t>(p.first)] != p.second) {
      return false;
    }
  }
  return true;
}

namespace {

// Predicates may reference attributes/values a given schema does not define
// (e.g. a label built for a different schema); fall back to numeric forms
// instead of indexing out of bounds.
bool PredicateInSchema(const AttributeSchema& schema,
                       const GroupLabel::Predicate& p) {
  return p.first >= 0 &&
         static_cast<size_t>(p.first) < schema.num_attributes() &&
         p.second >= 0 &&
         static_cast<size_t>(p.second) < schema.num_values(p.first);
}

}  // namespace

std::string GroupLabel::ToString(const AttributeSchema& schema) const {
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " \xE2\x88\xA7 ";  // " ∧ "
    if (PredicateInSchema(schema, predicates_[i])) {
      out += schema.attribute_name(predicates_[i].first);
      out += "=";
      out += schema.value_name(predicates_[i].first, predicates_[i].second);
    } else {
      out += "attr" + std::to_string(predicates_[i].first) + "=val" +
             std::to_string(predicates_[i].second);
    }
  }
  return out;
}

std::string GroupLabel::DisplayName(const AttributeSchema& schema) const {
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " ";
    if (PredicateInSchema(schema, predicates_[i])) {
      out += schema.value_name(predicates_[i].first, predicates_[i].second);
    } else {
      out += "val" + std::to_string(predicates_[i].second);
    }
  }
  return out;
}

size_t GroupLabel::Hash::operator()(const GroupLabel& g) const {
  size_t h = 0xcbf29ce484222325ULL;
  for (const GroupLabel::Predicate& p : g.predicates_) {
    h ^= static_cast<size_t>(p.first) * 0x100000001b3ULL +
         static_cast<size_t>(p.second) + 0x9e3779b97f4a7c15ULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace fairjob
