#ifndef FAIRJOB_CORE_GROUP_SPACE_H_
#define FAIRJOB_CORE_GROUP_SPACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/attribute_schema.h"
#include "core/group.h"

namespace fairjob {

// Dense identifier of a group within a GroupSpace.
using GroupId = int32_t;

// The universe of groups over a schema: every non-empty partial assignment
// of the protected attributes (for gender{2} × ethnicity{3} that is
// (2+1)·(3+1) − 1 = 11 groups, the 11 rows of the paper's Table 8).
//
// Precomputes, per group:
//  * variants(g, a): groups whose label matches g except for a different
//    value of attribute a (same attribute set);
//  * comparable(g) = ∪_{a ∈ A(g)} variants(g, a)  (Section 3.1).
class GroupSpace {
 public:
  // Enumerates all groups. The space keeps its own copy of the schema, so
  // it stays valid however the source schema (or a dataset owning it) is
  // moved afterwards. Errors: InvalidArgument if the schema has no
  // attributes or the group count would exceed 2^20 (guards combinatorial
  // blow-ups from mis-configured schemas).
  static Result<GroupSpace> Enumerate(const AttributeSchema& schema);

  // Enumerates only groups constraining at most `max_predicates` attributes
  // — the practical remedy for many-attribute schemas where the full
  // conjunction lattice explodes (cf. the subgroup-fairness literature the
  // paper cites: auditing usually targets "small" conjunctions).
  // Comparable groups always share the label's attribute set, so the
  // restricted space is closed under variants/comparables.
  // Errors: as Enumerate, plus InvalidArgument when max_predicates == 0.
  static Result<GroupSpace> EnumerateUpTo(const AttributeSchema& schema,
                                          size_t max_predicates);

  const AttributeSchema& schema() const { return schema_; }
  size_t num_groups() const { return labels_.size(); }

  const GroupLabel& label(GroupId g) const {
    return labels_[static_cast<size_t>(g)];
  }

  // Errors: NotFound if the label is not part of this space (e.g. built over
  // a different schema).
  Result<GroupId> IdOf(const GroupLabel& label) const;

  // Resolves "Black Female"-style display names (case-insensitive, value
  // names in any order). Errors: NotFound.
  Result<GroupId> FindByDisplayName(std::string_view name) const;

  // Groups differing from g only on the value of `a`. Empty when g does not
  // constrain `a`.
  std::vector<GroupId> Variants(GroupId g, AttributeId a) const;

  // Comparable groups of g, ascending by id.
  const std::vector<GroupId>& Comparables(GroupId g) const {
    return comparables_[static_cast<size_t>(g)];
  }

  // Ids (positions) of individuals in `population` matching group g.
  std::vector<size_t> MembersAmong(GroupId g,
                                   const std::vector<Demographics>& population)
      const;

 private:
  explicit GroupSpace(AttributeSchema schema) : schema_(std::move(schema)) {}

  AttributeSchema schema_;
  std::vector<GroupLabel> labels_;
  std::unordered_map<GroupLabel, GroupId, GroupLabel::Hash> id_of_;
  std::vector<std::vector<GroupId>> comparables_;
  std::unordered_map<std::string, GroupId> display_name_index_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_GROUP_SPACE_H_
