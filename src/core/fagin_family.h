#ifndef FAIRJOB_CORE_FAGIN_FAMILY_H_
#define FAIRJOB_CORE_FAGIN_FAMILY_H_

#include "core/fagin.h"

namespace fairjob {

// The other two members of the Fagin top-k family (Fagin, Lotem & Naor,
// "Optimal aggregation algorithms for middleware", JCSS 2003), adapted to
// the unfairness-cube setting like Algorithm 1's TA:
//
//  * FaginFA  — Fagin's original algorithm: round-robin sorted access until
//    k ids have been seen on *every* list, then random access to score every
//    id seen. Simpler bound than TA, typically more accesses.
//  * FaginNRA — no-random-access algorithm: maintains [lower, upper] bounds
//    per seen id from sorted accesses only; stops when the k-th best lower
//    bound is at least every other id's upper bound. Returns exact
//    aggregates (it keeps reading until bounds collapse for the returned
//    ids), which keeps its contract identical to TA/scan at the price of
//    more sorted accesses.
//
// Both support the same options as FaginTopK with these caveats:
//  * FA requires MissingCellPolicy::kZero semantics to bound unseen ids on
//    incomplete cubes; with kSkip it falls back to scoring every seen id
//    after exhausting the lists (still correct, no early stop).
//  * NRA supports kZero only (bounds for "average over present lists"
//    are not monotone); requests with kSkip are rejected as
//    InvalidArgument.
//
// Errors: as FaginTopK, plus the NRA restriction above.
Result<std::vector<ScoredEntry>> FaginFA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);

Result<std::vector<ScoredEntry>> FaginNRA(
    const std::vector<const InvertedIndex*>& lists, const TopKOptions& options,
    FaginStats* stats = nullptr);

// Which member of the family SolveQuantification should run.
enum class TopKAlgorithm {
  kThresholdAlgorithm,  // Algorithm 1 (default)
  kFA,
  kNRA,
  kScan,
};

const char* TopKAlgorithmName(TopKAlgorithm algorithm);

// Dispatches to FaginTopK / FaginFA / FaginNRA / ScanTopK.
Result<std::vector<ScoredEntry>> RunTopK(
    TopKAlgorithm algorithm, const std::vector<const InvertedIndex*>& lists,
    const TopKOptions& options, FaginStats* stats = nullptr);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_FAGIN_FAMILY_H_
