#ifndef FAIRJOB_CORE_TREND_H_
#define FAIRJOB_CORE_TREND_H_

#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Longitudinal fairness monitoring: snapshots of a dimension's aggregate
// unfairness across audit epochs (re-crawls), with drift and rank-crossing
// detection between consecutive epochs. Complements the incremental
// refresh path (RefreshMarketplaceColumn / IndexSet::RefreshColumn).
class TrendTracker {
 public:
  // Tracks the `dim` axis; positions refer to that axis of the recorded
  // cubes, which must all share its size.
  explicit TrendTracker(Dimension dim = Dimension::kGroup) : dim_(dim) {}

  // Appends one epoch: every axis position's aggregate over the other two
  // dimensions (undefined aggregates recorded as absent). Errors:
  // InvalidArgument when the cube's axis size disagrees with prior epochs.
  Status RecordEpoch(const UnfairnessCube& cube);

  Dimension dimension() const { return dim_; }
  size_t num_epochs() const { return epochs_.size(); }
  size_t axis_size() const {
    return epochs_.empty() ? 0 : epochs_.front().size();
  }

  // The recorded series for one axis position (one entry per epoch).
  std::vector<std::optional<double>> Series(size_t pos) const;

  struct Drift {
    size_t pos = 0;
    double from = 0.0;
    double to = 0.0;
    double delta() const { return to - from; }
  };

  // The k largest absolute changes between the last two epochs (positions
  // undefined in either epoch are skipped). Errors: FailedPrecondition with
  // fewer than two epochs.
  Result<std::vector<Drift>> TopDrifts(size_t k) const;

  // Pairs (a, b) whose relative unfairness order inverted between the last
  // two epochs (a was strictly below b, now strictly above) — the
  // longitudinal cousin of Problem 2's reversals. Errors: FailedPrecondition
  // with fewer than two epochs.
  Result<std::vector<std::pair<size_t, size_t>>> RankCrossings() const;

 private:
  Dimension dim_;
  std::vector<std::vector<std::optional<double>>> epochs_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_TREND_H_
