#include "core/unfairness_measures.h"

#include <cmath>
#include <vector>

#include "common/trace.h"
#include "ranking/emd.h"
#include "ranking/exposure.h"
#include "ranking/footrule.h"
#include "ranking/histogram.h"
#include "ranking/jaccard.h"
#include "ranking/rbo.h"

namespace fairjob {

Result<std::vector<double>> MarketplaceWorkerValues(
    const MarketRanking& ranking, const MeasureOptions& options) {
  size_t n = ranking.workers.size();
  std::vector<double> values(n, 0.0);
  if (options.use_scores_if_available && !ranking.scores.empty()) {
    return ranking.scores;
  }
  for (size_t i = 0; i < n; ++i) {
    FAIRJOB_ASSIGN_OR_RETURN(values[i], RelevanceFromRank(i + 1, n));
  }
  return values;
}

Status ValidateMarketplaceOptions(const MeasureOptions& options) {
  if (options.histogram_bins < 1) {
    return Status::InvalidArgument("histogram_bins must be >= 1");
  }
  if (options.exposure_model == ExposureModel::kPowerLaw &&
      options.exposure_gamma <= 0.0) {
    return Status::InvalidArgument("exposure_gamma must be positive");
  }
  return Status::OK();
}

namespace {

// Marketplace kernel metrics, shared by the per-triple reference path and
// the cell-shared context path so both report into the same series.
Counter* EmdInvocations() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.emd.invocations");
  return counter;
}
LatencyHistogram* EmdLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("measure.emd.latency_us");
  return histogram;
}
Counter* ExposureInvocations() {
  static Counter* const counter =
      MetricsRegistry::Global().counter("measure.exposure.invocations");
  return counter;
}
LatencyHistogram* ExposureLatency() {
  static LatencyHistogram* const histogram =
      MetricsRegistry::Global().histogram("measure.exposure.latency_us");
  return histogram;
}

// Position bias of one 0-based ranking position under the chosen model.
// Routes through ranking/exposure.h — the single, memo-backed home of the
// 1/log(1+rank) curve — so the per-cell paths and the batched engine
// (core/marketplace_batch.h) read bitwise-identical bias values.
double PositionBias(size_t pos, const MeasureOptions& options) {
  return options.exposure_model == ExposureModel::kLogInverse
             ? ExposureAtRank(pos + 1)
             : ExposureAtRankPower(pos + 1, options.exposure_gamma);
}

// Positions (0-based ranks) in `ranking` whose worker belongs to group g.
std::vector<size_t> GroupPositions(const MarketplaceDataset& data,
                                   const GroupSpace& space, GroupId g,
                                   const MarketRanking& ranking) {
  const GroupLabel& label = space.label(g);
  std::vector<size_t> out;
  for (size_t i = 0; i < ranking.workers.size(); ++i) {
    if (label.Matches(data.worker_demographics(ranking.workers[i]))) {
      out.push_back(i);
    }
  }
  return out;
}

Result<double> MarketplaceEmd(const MarketplaceDataset& data,
                              const GroupSpace& space, GroupId g,
                              const MarketRanking& ranking,
                              const MeasureOptions& options) {
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<double> values,
                           MarketplaceWorkerValues(ranking, options));
  std::vector<size_t> own = GroupPositions(data, space, g, ranking);
  if (own.empty()) {
    return Status::NotFound("group has no members in this ranking");
  }
  FAIRJOB_ASSIGN_OR_RETURN(Histogram own_hist,
                           Histogram::Make(options.histogram_bins, 0.0, 1.0));
  for (size_t pos : own) own_hist.Add(values[pos]);

  double sum = 0.0;
  size_t counted = 0;
  // Resolved outside the loop so the per-kernel cost while disabled is the
  // two relaxed loads inside Add/ScopedTimer, not the statics' init guards.
  Counter* const emd_invocations = EmdInvocations();
  LatencyHistogram* const emd_latency = EmdLatency();
  for (GroupId other : space.Comparables(g)) {
    std::vector<size_t> theirs = GroupPositions(data, space, other, ranking);
    if (theirs.empty()) continue;
    FAIRJOB_ASSIGN_OR_RETURN(Histogram their_hist,
                             Histogram::Make(options.histogram_bins, 0.0, 1.0));
    for (size_t pos : theirs) their_hist.Add(values[pos]);
    emd_invocations->Add(1);
    ScopedTimer timer(emd_latency);
    FAIRJOB_ASSIGN_OR_RETURN(double emd,
                             EmdBetweenHistograms(own_hist, their_hist));
    sum += emd;
    ++counted;
  }
  if (counted == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  return sum / static_cast<double>(counted);
}

Result<double> MarketplaceExposure(const MarketplaceDataset& data,
                                   const GroupSpace& space, GroupId g,
                                   const MarketRanking& ranking,
                                   const MeasureOptions& options) {
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<double> values,
                           MarketplaceWorkerValues(ranking, options));
  std::vector<size_t> own = GroupPositions(data, space, g, ranking);
  if (own.empty()) {
    return Status::NotFound("group has no members in this ranking");
  }

  ExposureInvocations()->Add(1);
  ScopedTimer timer(ExposureLatency());

  auto exposure_of = [&](const std::vector<size_t>& positions) {
    double total = 0.0;
    for (size_t pos : positions) total += PositionBias(pos, options);
    return total;
  };
  auto relevance_of = [&](const std::vector<size_t>& positions) {
    double total = 0.0;
    for (size_t pos : positions) total += values[pos];
    return total;
  };

  double own_exp = exposure_of(own);
  double own_rel = relevance_of(own);
  double exp_denominator = own_exp;
  double rel_denominator = own_rel;
  size_t comparable_members = 0;
  for (GroupId other : space.Comparables(g)) {
    std::vector<size_t> theirs = GroupPositions(data, space, other, ranking);
    comparable_members += theirs.size();
    exp_denominator += exposure_of(theirs);
    rel_denominator += relevance_of(theirs);
  }
  if (comparable_members == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  // exp_denominator > 0 because g itself has members; rel_denominator can be
  // 0 only if every involved worker has relevance 0, in which case ideal
  // exposure is undefined — treat the relevance share as 0 then.
  double exp_share = own_exp / exp_denominator;
  double rel_share = rel_denominator > 0.0 ? own_rel / rel_denominator : 0.0;
  return std::fabs(exp_share - rel_share);
}

}  // namespace

const char* MarketMeasureName(MarketMeasure m) {
  switch (m) {
    case MarketMeasure::kEmd:
      return "EMD";
    case MarketMeasure::kExposure:
      return "Exposure";
  }
  return "?";
}

const char* SearchMeasureName(SearchMeasure m) {
  switch (m) {
    case SearchMeasure::kKendallTau:
      return "KendallTau";
    case SearchMeasure::kJaccard:
      return "Jaccard";
    case SearchMeasure::kFootrule:
      return "Footrule";
    case SearchMeasure::kRbo:
      return "RBO";
  }
  return "?";
}

Result<double> SearchListDistance(SearchMeasure measure, const RankedList& a,
                                  const RankedList& b,
                                  const MeasureOptions& options) {
  // Kernel-level observability, indexed by the SearchMeasure enum order.
  // One static (one init-guard load per call); while metrics are off the
  // only other work is a single relaxed load and a branch — this function
  // is the innermost kernel of the search cube build.
  struct KernelMetrics {
    Counter* invocations[4];
    LatencyHistogram* latencies[4];
  };
  static const KernelMetrics km = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return KernelMetrics{
        {r.counter("measure.kendall_tau.invocations"),
         r.counter("measure.jaccard.invocations"),
         r.counter("measure.footrule.invocations"),
         r.counter("measure.rbo.invocations")},
        {r.histogram("measure.kendall_tau.latency_us"),
         r.histogram("measure.jaccard.latency_us"),
         r.histogram("measure.footrule.latency_us"),
         r.histogram("measure.rbo.latency_us")}};
  }();
  size_t index = static_cast<size_t>(measure);
  LatencyHistogram* hist = nullptr;
  if (index < 4 && km.latencies[index]->recording()) {
    km.invocations[index]->Add(1);
    hist = km.latencies[index];
  }
  ScopedTimer timer(hist);
  switch (measure) {
    case SearchMeasure::kKendallTau:
      return KendallTauTopK(a, b, options.kendall_penalty);
    case SearchMeasure::kJaccard:
      return JaccardDistance(a, b);
    case SearchMeasure::kFootrule:
      return FootruleTopK(a, b);
    case SearchMeasure::kRbo:
      return RboDistance(a, b, options.rbo_persistence);
  }
  return Status::InvalidArgument("unknown search measure");
}

Result<double> MarketplaceUnfairness(const MarketplaceDataset& data,
                                     const GroupSpace& space, GroupId g,
                                     QueryId q, LocationId l,
                                     MarketMeasure measure,
                                     const MeasureOptions& options) {
  FAIRJOB_RETURN_IF_ERROR(ValidateMarketplaceOptions(options));
  const MarketRanking* ranking = data.GetRanking(q, l);
  if (ranking == nullptr || ranking->workers.empty()) {
    return Status::NotFound("no ranking observed for this (query, location)");
  }
  switch (measure) {
    case MarketMeasure::kEmd:
      return MarketplaceEmd(data, space, g, *ranking, options);
    case MarketMeasure::kExposure:
      return MarketplaceExposure(data, space, g, *ranking, options);
  }
  return Status::InvalidArgument("unknown marketplace measure");
}

Result<MarketplaceCellContext> MarketplaceCellContext::Make(
    const MarketplaceDataset& data, const GroupSpace& space,
    const MarketRanking* ranking, const MeasureOptions& options) {
  FAIRJOB_RETURN_IF_ERROR(ValidateMarketplaceOptions(options));
  if (ranking == nullptr || ranking->workers.empty()) {
    return Status::NotFound("no ranking observed for this (query, location)");
  }
  MarketplaceCellContext ctx;
  ctx.space_ = &space;
  ctx.options_ = options;
  FAIRJOB_ASSIGN_OR_RETURN(ctx.values_, MarketplaceWorkerValues(*ranking, options));

  size_t n = ranking->workers.size();
  std::vector<const Demographics*> demos(n);
  for (size_t i = 0; i < n; ++i) {
    demos[i] = &data.worker_demographics(ranking->workers[i]);
  }

  size_t num_groups = space.num_groups();
  ctx.positions_.resize(num_groups);
  ctx.histograms_.reserve(num_groups);
  ctx.exposure_sums_.assign(num_groups, 0.0);
  ctx.relevance_sums_.assign(num_groups, 0.0);
  for (size_t g = 0; g < num_groups; ++g) {
    const GroupLabel& label = space.label(static_cast<GroupId>(g));
    std::vector<size_t>& positions = ctx.positions_[g];
    for (size_t i = 0; i < n; ++i) {
      if (label.Matches(*demos[i])) positions.push_back(i);
    }
    // The per-group histogram and partial sums accumulate positions in the
    // same ascending order as the per-triple path, keeping every derived
    // double bitwise-identical to MarketplaceUnfairness.
    FAIRJOB_ASSIGN_OR_RETURN(
        Histogram hist, Histogram::Make(options.histogram_bins, 0.0, 1.0));
    for (size_t pos : positions) {
      hist.Add(ctx.values_[pos]);
      ctx.exposure_sums_[g] += PositionBias(pos, options);
      ctx.relevance_sums_[g] += ctx.values_[pos];
    }
    ctx.histograms_.push_back(std::move(hist));
  }
  return ctx;
}

Result<double> MarketplaceCellContext::Emd(GroupId g) const {
  const std::vector<size_t>& own = positions(g);
  if (own.empty()) {
    return Status::NotFound("group has no members in this ranking");
  }
  double sum = 0.0;
  size_t counted = 0;
  Counter* const emd_invocations = EmdInvocations();
  LatencyHistogram* const emd_latency = EmdLatency();
  for (GroupId other : space_->Comparables(g)) {
    if (positions(other).empty()) continue;
    emd_invocations->Add(1);
    ScopedTimer timer(emd_latency);
    FAIRJOB_ASSIGN_OR_RETURN(
        double emd,
        EmdBetweenHistograms(histograms_[static_cast<size_t>(g)],
                             histograms_[static_cast<size_t>(other)]));
    sum += emd;
    ++counted;
  }
  if (counted == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  return sum / static_cast<double>(counted);
}

Result<double> MarketplaceCellContext::Exposure(GroupId g) const {
  const std::vector<size_t>& own = positions(g);
  if (own.empty()) {
    return Status::NotFound("group has no members in this ranking");
  }
  ExposureInvocations()->Add(1);
  ScopedTimer timer(ExposureLatency());
  double own_exp = exposure_sums_[static_cast<size_t>(g)];
  double own_rel = relevance_sums_[static_cast<size_t>(g)];
  double exp_denominator = own_exp;
  double rel_denominator = own_rel;
  size_t comparable_members = 0;
  for (GroupId other : space_->Comparables(g)) {
    comparable_members += positions(other).size();
    exp_denominator += exposure_sums_[static_cast<size_t>(other)];
    rel_denominator += relevance_sums_[static_cast<size_t>(other)];
  }
  if (comparable_members == 0) {
    return Status::NotFound("no comparable group has members in this ranking");
  }
  double exp_share = own_exp / exp_denominator;
  double rel_share = rel_denominator > 0.0 ? own_rel / rel_denominator : 0.0;
  return std::fabs(exp_share - rel_share);
}

Result<double> MarketplaceCellContext::Unfairness(GroupId g,
                                                  MarketMeasure measure) const {
  switch (measure) {
    case MarketMeasure::kEmd:
      return Emd(g);
    case MarketMeasure::kExposure:
      return Exposure(g);
  }
  return Status::InvalidArgument("unknown marketplace measure");
}

Result<double> SearchUnfairness(const SearchDataset& data,
                                const GroupSpace& space, GroupId g, QueryId q,
                                LocationId l, SearchMeasure measure,
                                const MeasureOptions& options) {
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  const std::vector<SearchObservation>* obs = data.GetObservations(q, l);
  if (obs == nullptr || obs->empty()) {
    return Status::NotFound("no observations for this (query, location)");
  }

  auto lists_of_group = [&](GroupId group) {
    const GroupLabel& label = space.label(group);
    std::vector<const RankedList*> lists;
    for (const SearchObservation& o : *obs) {
      if (label.Matches(data.user_demographics(o.user))) {
        lists.push_back(&o.results);
      }
    }
    return lists;
  };

  std::vector<const RankedList*> own = lists_of_group(g);
  if (own.empty()) {
    return Status::NotFound("group has no observations for this cell");
  }

  double group_sum = 0.0;
  size_t group_count = 0;
  for (GroupId other : space.Comparables(g)) {
    std::vector<const RankedList*> theirs = lists_of_group(other);
    if (theirs.empty()) continue;
    // Row-partial-sum order: each of `own`'s rows is accumulated on its own
    // before joining the pair total. This is the same association the batched
    // cube path uses (per-comparable-group column sums, see
    // EvaluateSearchColumn), which keeps the two bitwise identical.
    double pair_sum = 0.0;
    for (const RankedList* a : own) {
      double row_sum = 0.0;
      for (const RankedList* b : theirs) {
        FAIRJOB_ASSIGN_OR_RETURN(double d,
                                 SearchListDistance(measure, *a, *b, options));
        row_sum += d;
      }
      pair_sum += row_sum;
    }
    group_sum += pair_sum / static_cast<double>(own.size() * theirs.size());
    ++group_count;
  }
  if (group_count == 0) {
    return Status::NotFound("no comparable group has observations");
  }
  return group_sum / static_cast<double>(group_count);
}

}  // namespace fairjob
