#include "core/quantification_batch.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/trace.h"
#include "core/fagin_dense.h"
#include "ranking/simd.h"

namespace fairjob {
namespace {

using fagin_internal::Better;
using fagin_internal::BuildAllowedBitmap;
using fagin_internal::IsAllowed;
using fagin_internal::SortResults;
using fagin_internal::ThresholdBound;
using fagin_internal::UniverseOf;
using fagin_internal::ValidateTopK;

// FNV-1a over the exact selector sequences; bucket collisions fall back to
// SameSelectorGroup.
uint64_t SelectorHash(const QuantificationRequest& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(r.target));
  mix(r.agg1.positions.size());
  for (size_t p : r.agg1.positions) mix(p);
  mix(r.agg2.positions.size());
  for (size_t p : r.agg2.positions) mix(p);
  return h;
}

bool SameSelectorGroup(const QuantificationRequest& a,
                       const QuantificationRequest& b) {
  return a.target == b.target && a.agg1.positions == b.agg1.positions &&
         a.agg2.positions == b.agg2.positions;
}

// Lazily-filled per-position (sum, present-count) over the group's lists —
// the quantity DenseAggregate/ScoreCandidates recompute per candidate. The
// aggregate of a position depends only on the group's lists and the missing
// policy, never on the lane (k, direction and allowed filters decide which
// positions get scored, not what they score), so one computation serves
// every TA random access, FA phase-2 sweep and NRA epilogue in the group.
// The sum accumulates in list order — the exact FP order DenseAggregate
// uses — and the policy division happens fresh per call, so memoized
// answers are bitwise-identical to per-request ones. Counter increments
// (one random/dense access per list) are replayed on every call whether or
// not the value was cached: stats record what the per-request engine would
// have done, not how much work the memo saved.
class ScoreMemo {
 public:
  ScoreMemo(const std::vector<const InvertedIndex*>& lists, size_t universe)
      : lists_(lists),
        sums_(universe, 0.0),
        counts_(universe, 0),
        known_(universe, 0) {}

  // DenseAggregate semantics: bumps random/dense accesses, nullopt when the
  // position is present in no list; the caller owns ids_scored.
  std::optional<double> Aggregate(int32_t pos, MissingCellPolicy policy,
                                  FaginStats* stats) {
    stats->random_accesses += lists_.size();
    stats->dense_accesses += lists_.size();
    const size_t p = static_cast<size_t>(pos);
    if (known_[p] == 0) {
      double sum = 0.0;
      uint32_t present = 0;
      for (const InvertedIndex* list : lists_) {
        std::optional<double> v = list->Find(pos);
        if (v.has_value()) {
          sum += *v;
          ++present;
        }
      }
      sums_[p] = sum;
      counts_[p] = present;
      known_[p] = 1;
    }
    if (counts_[p] == 0) return std::nullopt;
    if (policy == MissingCellPolicy::kSkip) {
      return sums_[p] / static_cast<double>(counts_[p]);
    }
    return sums_[p] / static_cast<double>(lists_.size());
  }

 private:
  const std::vector<const InvertedIndex*>& lists_;
  std::vector<double> sums_;
  std::vector<uint32_t> counts_;
  std::vector<uint8_t> known_;
};

// One valid request inside a selector group: its engine options, the output
// slots, and the lane-local allowed bitmap.
struct Lane {
  size_t request_index = 0;
  TopKOptions options;
  FaginStats stats;
  std::vector<ScoredEntry> entries;  // engine output, pre-axis-id mapping
  std::vector<uint8_t> allowed_scratch;
  const uint8_t* allowed = nullptr;
};

// Engine-eligibility checks with exactly the per-request precedence and
// messages: ValidateTopK first (all engines), then NRA's policy, direction
// and width restrictions in FaginNRA's order.
Status ValidateForEngine(TopKAlgorithm algorithm,
                         const std::vector<const InvertedIndex*>& lists,
                         const TopKOptions& options) {
  FAIRJOB_RETURN_IF_ERROR(ValidateTopK(lists, options.k));
  if (algorithm == TopKAlgorithm::kNRA) {
    if (options.missing != MissingCellPolicy::kZero) {
      return Status::InvalidArgument(
          "NRA bounds require MissingCellPolicy::kZero (the average over "
          "present lists is not monotone in the unknown entries)");
    }
    if (options.direction != RankDirection::kMostUnfair) {
      return Status::InvalidArgument(
          "NRA supports kMostUnfair only; use TA or the scan for bottom-k");
    }
    if (lists.size() > 64) {
      return Status::InvalidArgument("NRA supports at most 64 lists");
    }
  }
  return Status::OK();
}

// --- Scan lanes ----------------------------------------------------------
// One shared, unfiltered accumulation pass over every list entry answers
// all scan lanes of the group. An entry at position p only ever contributes
// to sums[p], and lists are visited in order, so each position's sum
// accumulates in exactly the same FP order as the per-request scan — lane
// filters only decide which positions are *emitted*, never what their sums
// are. Sequential cost O(lanes × total entries) drops to
// O(total entries + lanes × universe).
void RunScanLanes(const std::vector<const InvertedIndex*>& lists,
                  size_t universe, const std::vector<Lane*>& lanes) {
  const size_t num_lists = lists.size();
  std::vector<double> sums(universe, 0.0);
  std::vector<uint32_t> counts(universe, 0);
  size_t longest = 0;
  size_t total_entries = 0;
  for (const InvertedIndex* list : lists) {
    longest = std::max(longest, list->size());
    total_entries += list->size();
    for (size_t i = 0; i < list->size(); ++i) {
      const ScoredEntry& e = list->entry(i);
      sums[static_cast<size_t>(e.pos)] += e.value;
      ++counts[static_cast<size_t>(e.pos)];
    }
  }

  // Present positions as a word bitmap: each lane's emit sweep intersects
  // it with the lane filter, skipping empty words, and the
  // simd::IntersectPopcount kernel (integer-only, so bitwise-safe) sizes
  // the output vector exactly up front.
  const size_t words = (universe + 63) / 64;
  std::vector<uint64_t> present(words, 0);
  for (size_t pos = 0; pos < universe; ++pos) {
    if (counts[pos] != 0) present[pos >> 6] |= uint64_t{1} << (pos & 63);
  }

  std::vector<uint64_t> lane_words;
  for (Lane* lane : lanes) {
    FaginStats* stats = &lane->stats;
    stats->rounds = std::max(stats->rounds, longest);
    stats->sorted_accesses += total_entries;

    const uint64_t* filter = present.data();
    if (lane->allowed != nullptr) {
      lane_words.assign(words, 0);
      for (size_t pos = 0; pos < universe; ++pos) {
        if (lane->allowed[pos] != 0) {
          lane_words[pos >> 6] |= uint64_t{1} << (pos & 63);
        }
      }
      filter = lane_words.data();
    }
    const size_t emitted =
        simd::IntersectPopcount(filter, present.data(), words);
    std::vector<ScoredEntry>& out = lane->entries;
    out.reserve(emitted);
    const double full_denom = static_cast<double>(num_lists);
    const bool skip_policy =
        lane->options.missing == MissingCellPolicy::kSkip;
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = filter[w] & present[w];
      while (bits != 0) {
        const size_t pos =
            (w << 6) + static_cast<size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const double denom =
            skip_policy ? static_cast<double>(counts[pos]) : full_denom;
        out.push_back(
            ScoredEntry{static_cast<int32_t>(pos), sums[pos] / denom});
      }
    }
    // Per-request counter semantics: one random (dense) access per list per
    // emitted candidate, one ids_scored each.
    stats->random_accesses += emitted * num_lists;
    stats->dense_accesses += emitted * num_lists;
    stats->ids_scored += emitted;
    SortResults(&out, lane->options.direction);
    if (out.size() > lane->options.k) out.resize(lane->options.k);
  }
}

// --- TA lanes ------------------------------------------------------------
// In per-request TA the cursors advance identically every round regardless
// of k / allowed / missing — only the direction changes the access pattern.
// So all TA lanes of one direction share the round-robin sorted access:
// each list entry is read once per round and delivered to every active
// lane in list order (the same order DenseAggregate sees per request).
// Threshold bounds are pure in (cursors, missing, direction) and cursors
// are shared, so they are memoized per missing policy within a round, and
// candidate scores come from the group ScoreMemo.
void RunTaLanes(const std::vector<const InvertedIndex*>& lists,
                size_t universe, RankDirection direction,
                const std::vector<Lane*>& lanes, ScoreMemo* memo) {
  struct TaState {
    Lane* lane;
    std::vector<uint8_t> seen;
    std::vector<ScoredEntry> kept;
    bool active = true;
  };
  const bool most = direction == RankDirection::kMostUnfair;
  auto worse_on_top = [direction](const ScoredEntry& a, const ScoredEntry& b) {
    return Better(a.value, b.value, direction);
  };

  std::vector<TaState> states;
  states.reserve(lanes.size());
  for (Lane* lane : lanes) {
    states.push_back(TaState{lane, std::vector<uint8_t>(universe, 0), {}, true});
  }

  std::vector<size_t> cursors(lists.size(), 0);
  size_t active = states.size();
  while (active > 0) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      const size_t at = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i]->entry(at);
      ++cursors[i];
      any_read = true;
      for (TaState& s : states) {
        if (!s.active) continue;
        FaginStats* stats = &s.lane->stats;
        ++stats->sorted_accesses;
        if (!IsAllowed(s.lane->allowed, e.pos) ||
            s.seen[static_cast<size_t>(e.pos)] != 0) {
          continue;
        }
        s.seen[static_cast<size_t>(e.pos)] = 1;
        std::optional<double> agg =
            memo->Aggregate(e.pos, s.lane->options.missing, stats);
        if (!agg.has_value()) continue;  // unreachable: e.pos is in list i
        ++stats->ids_scored;
        ScoredEntry scored{e.pos, *agg};
        if (s.kept.size() < s.lane->options.k) {
          s.kept.push_back(scored);
          std::push_heap(s.kept.begin(), s.kept.end(), worse_on_top);
        } else if (Better(scored.value, s.kept.front().value, direction)) {
          std::pop_heap(s.kept.begin(), s.kept.end(), worse_on_top);
          s.kept.back() = scored;
          std::push_heap(s.kept.begin(), s.kept.end(), worse_on_top);
        }
      }
    }
    if (!any_read) break;  // every list exhausted, for every lane at once
    bool tau_valid[2] = {false, false};
    double tau_memo[2] = {0.0, 0.0};
    for (TaState& s : states) {
      if (!s.active) continue;
      FaginStats* stats = &s.lane->stats;
      ++stats->rounds;
      if (s.kept.size() < s.lane->options.k) continue;
      ++stats->threshold_checks;
      const size_t mi =
          s.lane->options.missing == MissingCellPolicy::kSkip ? 0 : 1;
      if (!tau_valid[mi]) {
        tau_memo[mi] = ThresholdBound(lists, cursors, s.lane->options);
        tau_valid[mi] = true;
      }
      const double tau = tau_memo[mi];
      const double kth = s.kept.front().value;
      const bool done = most ? (kth >= tau) : (kth <= tau);
      if (done) {
        s.active = false;
        --active;
      }
    }
  }
  for (TaState& s : states) {
    SortResults(&s.kept, direction);
    s.lane->entries = std::move(s.kept);
  }
}

// --- FA lanes ------------------------------------------------------------
// Phase 1 (round-robin sorted access) is shared per direction exactly like
// TA; each lane keeps its own seen counts and stops when k ids are complete
// on every list (kZero only). Phase 2 sweeps each lane's candidates in
// ascending position order — the order ScoreCandidates emits — against the
// group ScoreMemo, with ScoreCandidates' exact counter semantics (one
// random/dense access per list per candidate, ids_scored only when the
// position is present somewhere).
void RunFaLanes(const std::vector<const InvertedIndex*>& lists,
                size_t universe, RankDirection direction,
                const std::vector<Lane*>& lanes, ScoreMemo* memo) {
  struct FaState {
    Lane* lane;
    std::vector<uint32_t> seen_count;
    size_t complete_ids = 0;
    bool can_stop_early = false;
    bool active = true;
  };
  const bool most = direction == RankDirection::kMostUnfair;

  std::vector<FaState> states;
  states.reserve(lanes.size());
  for (Lane* lane : lanes) {
    FaState s{lane, std::vector<uint32_t>(universe, 0), 0,
              lane->options.missing == MissingCellPolicy::kZero, true};
    states.push_back(std::move(s));
  }

  std::vector<size_t> cursors(lists.size(), 0);
  size_t active = states.size();
  while (active > 0) {
    bool any_read = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      const size_t at = most ? cursors[i] : lists[i]->size() - 1 - cursors[i];
      const ScoredEntry& e = lists[i]->entry(at);
      ++cursors[i];
      any_read = true;
      for (FaState& s : states) {
        if (!s.active) continue;
        ++s.lane->stats.sorted_accesses;
        if (!IsAllowed(s.lane->allowed, e.pos)) continue;
        const uint32_t seen = ++s.seen_count[static_cast<size_t>(e.pos)];
        if (seen == lists.size()) ++s.complete_ids;
      }
    }
    if (!any_read) break;
    for (FaState& s : states) {
      if (!s.active) continue;
      ++s.lane->stats.rounds;
      if (s.can_stop_early) {
        ++s.lane->stats.threshold_checks;
        if (s.complete_ids >= s.lane->options.k) {
          s.active = false;
          --active;
        }
      }
    }
  }

  for (FaState& s : states) {
    FaginStats* stats = &s.lane->stats;
    std::vector<ScoredEntry> scored;
    for (size_t pos = 0; pos < universe; ++pos) {
      if (s.seen_count[pos] == 0) continue;
      std::optional<double> agg = memo->Aggregate(
          static_cast<int32_t>(pos), s.lane->options.missing, stats);
      if (!agg.has_value()) continue;
      ++stats->ids_scored;
      scored.push_back(ScoredEntry{static_cast<int32_t>(pos), *agg});
    }
    SortResults(&scored, direction);
    if (scored.size() > s.lane->options.k) scored.resize(s.lane->options.k);
    s.lane->entries = std::move(scored);
  }
}

// --- NRA lanes -----------------------------------------------------------
// Direct multi-lane transcription of FaginNRA: the sorted access (always
// from the top — NRA is kMostUnfair + kZero only) and the per-round
// frontier bounds are shared, the bound bookkeeping is per lane. The
// `monotone` fast path depends only on the lists, so it is decided once for
// the whole group.
void RunNraLanes(const std::vector<const InvertedIndex*>& lists,
                 size_t universe, const std::vector<Lane*>& lanes,
                 ScoreMemo* memo) {
  struct NraState {
    Lane* lane;
    std::vector<double> known_sum;
    std::vector<double> lower_bound;
    std::vector<uint64_t> known_mask;
    std::vector<int32_t> seen_positions;
    std::vector<uint8_t> in_top;
    std::vector<std::pair<double, int32_t>> lowers;
    std::vector<std::pair<double, int32_t>> top;
    std::vector<int32_t> touched;
    bool top_built = false;
    bool active = true;
  };
  const size_t num_lists = lists.size();
  const double denom = static_cast<double>(num_lists);

  auto lower_cmp = [](const std::pair<double, int32_t>& a,
                      const std::pair<double, int32_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  bool monotone = true;
  for (const InvertedIndex* list : lists) {
    if (!list->empty() && list->entry(list->size() - 1).value < 0.0) {
      monotone = false;
      break;
    }
  }

  std::vector<NraState> states;
  states.reserve(lanes.size());
  for (Lane* lane : lanes) {
    NraState s;
    s.lane = lane;
    s.known_sum.assign(universe, 0.0);
    s.lower_bound.assign(universe, 0.0);
    s.known_mask.assign(universe, 0);
    s.in_top.assign(universe, 0);
    states.push_back(std::move(s));
  }

  std::vector<size_t> cursors(num_lists, 0);
  std::vector<double> frontiers(num_lists, 0.0);
  // The entries read this round: every active lane replays them in list
  // order, exactly the order its per-request run would have seen.
  std::vector<std::pair<size_t, const ScoredEntry*>> reads;
  size_t active = states.size();
  while (active > 0) {
    reads.clear();
    for (size_t i = 0; i < num_lists; ++i) {
      if (cursors[i] >= lists[i]->size()) continue;
      reads.emplace_back(i, &lists[i]->entry(cursors[i]));
      ++cursors[i];
    }
    if (reads.empty()) break;  // exhausted: epilogue below

    bool frontiers_valid = false;
    double frontier_sum = 0.0;
    for (NraState& s : states) {
      if (!s.active) continue;
      FaginStats* stats = &s.lane->stats;
      const size_t k = s.lane->options.k;
      s.touched.clear();
      for (const auto& [i, e] : reads) {
        ++stats->sorted_accesses;
        if (!IsAllowed(s.lane->allowed, e->pos)) continue;
        const size_t p = static_cast<size_t>(e->pos);
        if (s.known_mask[p] == 0) s.seen_positions.push_back(e->pos);
        s.known_sum[p] += e->value;
        s.lower_bound[p] = s.known_sum[p] / denom;
        s.known_mask[p] |= (1ull << i);
        if (s.top_built) s.touched.push_back(e->pos);
      }
      ++stats->rounds;

      if (s.seen_positions.size() < k) continue;
      ++stats->threshold_checks;

      if (!frontiers_valid) {
        // Frontier bounds depend only on the shared cursors, so one
        // evaluation per round serves every lane that checks.
        frontier_sum = 0.0;
        for (size_t i = 0; i < num_lists; ++i) {
          frontiers[i] = cursors[i] >= lists[i]->size()
                             ? 0.0
                             : std::max(lists[i]->entry(cursors[i]).value, 0.0);
          frontier_sum += frontiers[i];
        }
        frontiers_valid = true;
      }

      double kth_lower;
      if (monotone) {
        if (!s.top_built) {
          s.lowers.clear();
          s.lowers.reserve(s.seen_positions.size());
          for (int32_t pos : s.seen_positions) {
            s.lowers.emplace_back(s.lower_bound[static_cast<size_t>(pos)], pos);
          }
          std::partial_sort(s.lowers.begin(),
                            s.lowers.begin() + static_cast<long>(k),
                            s.lowers.end(), lower_cmp);
          s.top.assign(s.lowers.begin(), s.lowers.begin() + static_cast<long>(k));
          for (const auto& entry : s.top) {
            s.in_top[static_cast<size_t>(entry.second)] = 1;
          }
          s.top_built = true;
        } else {
          for (int32_t pos : s.touched) {
            const size_t p = static_cast<size_t>(pos);
            std::pair<double, int32_t> key{s.lower_bound[p], pos};
            if (s.in_top[p] != 0) {
              size_t j = 0;
              while (s.top[j].second != pos) ++j;
              s.top[j] = key;
              for (; j > 0 && lower_cmp(s.top[j], s.top[j - 1]); --j) {
                std::swap(s.top[j], s.top[j - 1]);
              }
            } else if (lower_cmp(key, s.top.back())) {
              s.in_top[static_cast<size_t>(s.top.back().second)] = 0;
              s.top.back() = key;
              s.in_top[p] = 1;
              for (size_t j = s.top.size() - 1;
                   j > 0 && lower_cmp(s.top[j], s.top[j - 1]); --j) {
                std::swap(s.top[j], s.top[j - 1]);
              }
            }
          }
        }
        kth_lower = s.top.back().first;
      } else {
        s.lowers.clear();
        s.lowers.reserve(s.seen_positions.size());
        for (int32_t pos : s.seen_positions) {
          s.lowers.emplace_back(s.lower_bound[static_cast<size_t>(pos)], pos);
        }
        std::nth_element(s.lowers.begin(),
                         s.lowers.begin() + static_cast<long>(k - 1),
                         s.lowers.end(), lower_cmp);
        kth_lower = s.lowers[k - 1].first;
        for (size_t i = 0; i < k; ++i) {
          s.in_top[static_cast<size_t>(s.lowers[i].second)] = 1;
        }
      }

      double outside_upper_raw = frontier_sum;
      for (int32_t pos : s.seen_positions) {
        const size_t p = static_cast<size_t>(pos);
        if (s.in_top[p] != 0) continue;
        double upper = s.known_sum[p];
        for (size_t i = 0; i < num_lists; ++i) {
          if ((s.known_mask[p] & (1ull << i)) == 0) upper += frontiers[i];
        }
        outside_upper_raw = std::max(outside_upper_raw, upper);
      }
      const double outside_upper = outside_upper_raw / denom;
      if (kth_lower >= outside_upper) {
        std::vector<ScoredEntry> out;
        out.reserve(k);
        for (size_t i = 0; i < k; ++i) {
          const int32_t pos = monotone ? s.top[i].second : s.lowers[i].second;
          std::optional<double> agg =
              memo->Aggregate(pos, s.lane->options.missing, stats);
          if (agg.has_value()) {
            ++stats->ids_scored;
            out.push_back(ScoredEntry{pos, *agg});
          }
        }
        SortResults(&out, s.lane->options.direction);
        s.lane->entries = std::move(out);
        s.active = false;
        --active;
      } else if (!monotone) {
        for (size_t i = 0; i < k; ++i) {
          s.in_top[static_cast<size_t>(s.lowers[i].second)] = 0;
        }
      }
    }
  }

  // Lists exhausted: every remaining lane's aggregates are fully known.
  for (NraState& s : states) {
    if (!s.active) continue;
    FaginStats* stats = &s.lane->stats;
    std::vector<ScoredEntry> out;
    out.reserve(s.seen_positions.size());
    for (int32_t pos : s.seen_positions) {
      ++stats->ids_scored;
      out.push_back(
          ScoredEntry{pos, s.known_sum[static_cast<size_t>(pos)] / denom});
    }
    SortResults(&out, s.lane->options.direction);
    if (out.size() > s.lane->options.k) out.resize(s.lane->options.k);
    s.lane->entries = std::move(out);
  }
}

}  // namespace

std::vector<Result<QuantificationResult>> SolveQuantificationBatch(
    const UnfairnessCube& cube, const IndexSet& indices,
    const std::vector<QuantificationRequest>& requests,
    BatchExecStats* exec_stats) {
  TraceSpan span("SolveQuantificationBatch", "quantification");
  BatchExecStats local_stats;
  if (exec_stats == nullptr) exec_stats = &local_stats;
  *exec_stats = BatchExecStats{};

  // errors[i] OK means values[i] holds the computed result.
  std::vector<Status> errors(requests.size());
  std::vector<QuantificationResult> values(requests.size());

  // Group valid requests by exact selector sequence (see header).
  struct Group {
    std::vector<size_t> members;  // request indices, in arrival order
  };
  std::vector<Group> groups;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < requests.size(); ++i) {
    Status valid = ValidateQuantificationRequest(cube, requests[i]);
    if (!valid.ok()) {
      errors[i] = std::move(valid);
      ++exec_stats->invalid;
      continue;
    }
    std::vector<size_t>& bucket = buckets[SelectorHash(requests[i])];
    size_t group_index = groups.size();
    for (size_t g : bucket) {
      if (SameSelectorGroup(requests[groups[g].members.front()], requests[i])) {
        group_index = g;
        break;
      }
    }
    if (group_index == groups.size()) {
      groups.push_back(Group{});
      bucket.push_back(group_index);
    }
    groups[group_index].members.push_back(i);
  }

  for (const Group& group : groups) {
    const QuantificationRequest& representative =
        requests[group.members.front()];
    std::vector<const InvertedIndex*> lists = indices.ListsFor(
        representative.target, representative.agg1, representative.agg2);
    ++exec_stats->groups;
    exec_stats->lists_gathered += lists.size();
    const size_t universe =
        UniverseOf(lists, cube.axis_size(representative.target));

    // Build the group's lanes; engine-invalid requests error out here with
    // exactly the per-request status (their per-request run would have
    // gathered the lists too, so they still count as demand).
    std::vector<Lane> lanes;
    lanes.reserve(group.members.size());
    for (size_t i : group.members) {
      const QuantificationRequest& request = requests[i];
      exec_stats->lists_demanded += lists.size();
      TopKOptions options;
      options.k = request.k;
      options.direction = request.direction;
      options.missing = request.missing;
      options.allowed = request.allowed_targets.empty()
                            ? nullptr
                            : &request.allowed_targets;
      options.universe_hint = cube.axis_size(request.target);
      Status valid = ValidateForEngine(request.algorithm, lists, options);
      if (!valid.ok()) {
        errors[i] = std::move(valid);
        ++exec_stats->invalid;
        continue;
      }
      Lane lane;
      lane.request_index = i;
      lane.options = options;
      lanes.push_back(std::move(lane));
    }
    // Materialize filters after the lanes vector is final (Lane::allowed
    // points into the lane's own scratch).
    for (Lane& lane : lanes) {
      lane.allowed =
          BuildAllowedBitmap(lane.options.allowed, universe,
                             &lane.allowed_scratch);
    }

    std::vector<Lane*> scan_lanes;
    std::vector<Lane*> ta_most;
    std::vector<Lane*> ta_least;
    std::vector<Lane*> fa_most;
    std::vector<Lane*> fa_least;
    std::vector<Lane*> nra_lanes;
    for (Lane& lane : lanes) {
      const bool most =
          lane.options.direction == RankDirection::kMostUnfair;
      switch (requests[lane.request_index].algorithm) {
        case TopKAlgorithm::kScan:
          scan_lanes.push_back(&lane);
          break;
        case TopKAlgorithm::kThresholdAlgorithm:
          (most ? ta_most : ta_least).push_back(&lane);
          break;
        case TopKAlgorithm::kFA:
          (most ? fa_most : fa_least).push_back(&lane);
          break;
        case TopKAlgorithm::kNRA:
          nra_lanes.push_back(&lane);
          break;
      }
    }
    exec_stats->scan_lanes += scan_lanes.size();
    exec_stats->ta_lanes += ta_most.size() + ta_least.size();
    exec_stats->fa_lanes += fa_most.size() + fa_least.size();
    exec_stats->nra_lanes += nra_lanes.size();

    if (!scan_lanes.empty()) {
      ++exec_stats->shared_scan_passes;
      RunScanLanes(lists, universe, scan_lanes);
    }
    // One score memo per group: TA random accesses, FA phase-2 sweeps and
    // NRA epilogues all aggregate the same lists, so each position's
    // (sum, count) is computed at most once across every random-access lane.
    ScoreMemo memo(lists, universe);
    if (!ta_most.empty()) {
      RunTaLanes(lists, universe, RankDirection::kMostUnfair, ta_most, &memo);
    }
    if (!ta_least.empty()) {
      RunTaLanes(lists, universe, RankDirection::kLeastUnfair, ta_least,
                 &memo);
    }
    if (!fa_most.empty()) {
      RunFaLanes(lists, universe, RankDirection::kMostUnfair, fa_most, &memo);
    }
    if (!fa_least.empty()) {
      RunFaLanes(lists, universe, RankDirection::kLeastUnfair, fa_least,
                 &memo);
    }
    if (!nra_lanes.empty()) {
      RunNraLanes(lists, universe, nra_lanes, &memo);
    }

    for (Lane& lane : lanes) {
      const QuantificationRequest& request = requests[lane.request_index];
      QuantificationResult result;
      result.stats = lane.stats;
      result.answers.reserve(lane.entries.size());
      for (const ScoredEntry& e : lane.entries) {
        result.answers.push_back(QuantificationAnswer{
            cube.axis_id(request.target, static_cast<size_t>(e.pos)),
            e.value});
      }
      values[lane.request_index] = std::move(result);
      ++exec_stats->requests;
    }
  }

  std::vector<Result<QuantificationResult>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (errors[i].ok()) {
      results.push_back(std::move(values[i]));
    } else {
      results.push_back(std::move(errors[i]));
    }
  }
  return results;
}

}  // namespace fairjob
