#include "core/coverage.h"

#include <algorithm>

namespace fairjob {
namespace {

struct Accumulator {
  size_t cells = 0;
  size_t min_members = 0;
  size_t max_members = 0;
  size_t total_members = 0;

  void Add(size_t members) {
    if (members == 0) return;
    if (cells == 0) {
      min_members = max_members = members;
    } else {
      min_members = std::min(min_members, members);
      max_members = std::max(max_members, members);
    }
    total_members += members;
    ++cells;
  }
};

CoverageReport Finalize(const GroupSpace& space,
                        const std::vector<Accumulator>& accumulators,
                        size_t cells_total, double min_mean_members) {
  CoverageReport report;
  for (size_t g = 0; g < accumulators.size(); ++g) {
    const Accumulator& acc = accumulators[g];
    GroupCoverage coverage;
    coverage.group = static_cast<GroupId>(g);
    coverage.cells_with_members = acc.cells;
    coverage.cells_total = cells_total;
    coverage.min_members = acc.min_members;
    coverage.max_members = acc.max_members;
    coverage.mean_members =
        acc.cells == 0 ? 0.0
                       : static_cast<double>(acc.total_members) /
                             static_cast<double>(acc.cells);
    if (acc.cells == 0) {
      report.absent.push_back(static_cast<GroupId>(g));
    } else if (coverage.mean_members < min_mean_members) {
      report.low_support.push_back(static_cast<GroupId>(g));
    }
    report.groups.push_back(coverage);
  }
  (void)space;
  return report;
}

}  // namespace

Result<CoverageReport> AnalyzeMarketplaceCoverage(
    const MarketplaceDataset& data, const GroupSpace& space,
    double min_mean_members) {
  std::vector<QueryLocation> pairs = data.RankedPairs();
  if (pairs.empty()) {
    return Status::InvalidArgument("dataset has no ranked observations");
  }
  std::vector<Accumulator> accumulators(space.num_groups());
  for (const QueryLocation& ql : pairs) {
    const MarketRanking* ranking = data.GetRanking(ql.query, ql.location);
    std::vector<size_t> members(space.num_groups(), 0);
    for (WorkerId w : ranking->workers) {
      const Demographics& d = data.worker_demographics(w);
      for (size_t g = 0; g < space.num_groups(); ++g) {
        if (space.label(static_cast<GroupId>(g)).Matches(d)) ++members[g];
      }
    }
    for (size_t g = 0; g < space.num_groups(); ++g) {
      accumulators[g].Add(members[g]);
    }
  }
  return Finalize(space, accumulators, pairs.size(), min_mean_members);
}

Result<CoverageReport> AnalyzeSearchCoverage(const SearchDataset& data,
                                             const GroupSpace& space,
                                             double min_mean_members) {
  size_t cells_total = 0;
  std::vector<Accumulator> accumulators(space.num_groups());
  // SearchDataset exposes observations per (q, l); iterate every vocabulary
  // combination and skip the absent ones.
  for (QueryId q = 0; q < static_cast<QueryId>(data.queries().size()); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(data.locations().size());
         ++l) {
      const std::vector<SearchObservation>* obs = data.GetObservations(q, l);
      if (obs == nullptr || obs->empty()) continue;
      ++cells_total;
      std::vector<size_t> members(space.num_groups(), 0);
      for (const SearchObservation& o : *obs) {
        const Demographics& d = data.user_demographics(o.user);
        for (size_t g = 0; g < space.num_groups(); ++g) {
          if (space.label(static_cast<GroupId>(g)).Matches(d)) ++members[g];
        }
      }
      for (size_t g = 0; g < space.num_groups(); ++g) {
        accumulators[g].Add(members[g]);
      }
    }
  }
  if (cells_total == 0) {
    return Status::InvalidArgument("dataset has no observations");
  }
  return Finalize(space, accumulators, cells_total, min_mean_members);
}

}  // namespace fairjob
