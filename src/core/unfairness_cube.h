#ifndef FAIRJOB_CORE_UNFAIRNESS_CUBE_H_
#define FAIRJOB_CORE_UNFAIRNESS_CUBE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"
#include "core/marketplace_batch.h"
#include "core/unfairness_measures.h"

namespace fairjob {

// The three dimensions of the framework (Section 4.1).
enum class Dimension { kGroup = 0, kQuery = 1, kLocation = 2 };

const char* DimensionName(Dimension d);

// Selects positions along one cube axis; an empty position list means "all".
struct AxisSelector {
  std::vector<size_t> positions;

  static AxisSelector All() { return AxisSelector{}; }
  static AxisSelector Single(size_t pos) { return AxisSelector{{pos}}; }

  bool all() const { return positions.empty(); }
};

// Dense group × query × location tensor of unfairness values d<g,q,l>, with
// missing cells (triples the measure is undefined for: unobserved (q,l)
// pairs, groups without members, ...). Axis positions are indices into the
// id lists the cube was built over.
class UnfairnessCube {
 public:
  // Errors: InvalidArgument on an empty axis or duplicate ids within an axis.
  static Result<UnfairnessCube> Make(std::vector<GroupId> groups,
                                     std::vector<QueryId> queries,
                                     std::vector<LocationId> locations);

  size_t axis_size(Dimension d) const { return ids_[AxisIndex(d)].size(); }
  int32_t axis_id(Dimension d, size_t pos) const {
    return ids_[AxisIndex(d)][pos];
  }
  // O(1) via the per-axis position index built in Make. Errors: NotFound if
  // `id` is not on axis `d`.
  Result<size_t> PosOf(Dimension d, int32_t id) const;

  void Set(size_t g, size_t q, size_t l, double value) {
    values_[Offset(g, q, l)] = value;
  }
  void Clear(size_t g, size_t q, size_t l) {
    values_[Offset(g, q, l)].reset();
  }
  std::optional<double> Get(size_t g, size_t q, size_t l) const {
    return values_[Offset(g, q, l)];
  }

  size_t num_cells() const { return values_.size(); }
  size_t num_present() const;

  // Per-(query, location) column epochs for incremental maintenance
  // (docs/serving.md): a counter that the delta path bumps whenever the
  // column's cells were recomputed to *different* values, so snapshot cache
  // keys can bind to exactly the columns a request reads instead of the
  // whole cube. Epochs start at 0, are carried along by cube copies, and
  // are NOT part of FingerprintCube (they describe history, not contents).
  uint64_t column_epoch(size_t q, size_t l) const {
    return epochs_[ColumnOffset(q, l)];
  }
  void BumpColumnEpoch(size_t q, size_t l) { ++epochs_[ColumnOffset(q, l)]; }
  size_t num_columns() const { return epochs_.size(); }

  // Mean of the present cells within the selected sub-box; nullopt when the
  // selection contains no present cell. This realizes every aggregate in
  // Section 3.4 (d<g,Q,L>, d<G,Q,l>, d<G,q,L>, ...).
  std::optional<double> Average(const AxisSelector& groups,
                                const AxisSelector& queries,
                                const AxisSelector& locations) const;

  // d<g,Q,L> with axis `d` fixed at `pos`, averaging over everything else.
  std::optional<double> AxisAverage(Dimension d, size_t pos) const;

 private:
  UnfairnessCube() = default;

  static size_t AxisIndex(Dimension d) { return static_cast<size_t>(d); }
  size_t Offset(size_t g, size_t q, size_t l) const {
    return (g * ids_[1].size() + q) * ids_[2].size() + l;
  }
  size_t ColumnOffset(size_t q, size_t l) const {
    return q * ids_[2].size() + l;
  }

  std::vector<int32_t> ids_[3];  // group / query / location ids per axis
  std::unordered_map<int32_t, size_t> pos_of_[3];  // id -> axis position
  std::vector<std::optional<double>> values_;
  std::vector<uint64_t> epochs_;  // per-(query, location) column epochs
};

// Axis universes for cube construction; empty vectors default to "all groups
// in the space" / "all queries and locations in the dataset vocabulary".
struct CubeAxes {
  std::vector<GroupId> groups;
  std::vector<QueryId> queries;
  std::vector<LocationId> locations;
};

// The axes a builder would actually use: `axes` with empty vectors defaulted
// against the dataset/space. Lets a caller size a CubeColumnSink (e.g. a
// binary cube file header) before starting a sharded build over the same
// axes. Errors: InvalidArgument when the dataset has no queries/locations.
Result<CubeAxes> ResolveMarketplaceCubeAxes(const MarketplaceDataset& data,
                                            const GroupSpace& space,
                                            const CubeAxes& axes = {});
Result<CubeAxes> ResolveSearchCubeAxes(const SearchDataset& data,
                                       const GroupSpace& space,
                                       const CubeAxes& axes = {});

// Receives finished (query, location) columns from a sharded cube build.
// `values[g]` is the cell for group-axis position g (nullopt = undefined
// triple); positions index the resolved cube axes. Consume is called from
// pool threads in no particular column order — implementations must be
// thread-safe — but each column is delivered exactly once.
class CubeColumnSink {
 public:
  virtual ~CubeColumnSink() = default;
  virtual Status Consume(size_t query_pos, size_t location_pos,
                         const std::optional<double>* values,
                         size_t num_groups) = 0;
};

// Sink that materializes the streamed columns into a pre-made cube (the
// cube's axes must equal the build's resolved axes). Lock-free: concurrent
// columns write disjoint cells. Used for differential testing and for small
// builds where bounded memory is not a concern.
class CubeMaterializeSink final : public CubeColumnSink {
 public:
  explicit CubeMaterializeSink(UnfairnessCube* cube) : cube_(cube) {}
  Status Consume(size_t query_pos, size_t location_pos,
                 const std::optional<double>* values,
                 size_t num_groups) override;

 private:
  UnfairnessCube* cube_;
};

// Sharded construction: (query, location) columns are partitioned into
// shards of `shard_columns`; within a shard, columns are evaluated on
// `parallelism` threads of the shared pool and streamed into the sink as
// they finish. Peak memory is O(parallelism) column buffers plus whatever
// the sink holds — the G×Q×L tensor never materializes — so million-user
// datasets build in bounded RSS with the cube landing on disk (see
// BinaryCubeColumnWriter in crawl/cube_io.h).
struct ShardedBuildOptions {
  size_t shard_columns = 1024;  // columns per shard; bounds in-flight work
  size_t parallelism = 1;
};

// Evaluates the chosen measure for every (g, q, l) in the axes; undefined
// triples stay missing. Group membership is hoisted into a per-build
// MarketplaceGroupMembership table (label matching once per build, not per
// cell) and per-cell state (worker values, per-group histograms, bias and
// relevance sums — see MarketplaceCellBatch in core/marketplace_batch.h) is
// computed once per (query, location) and shared across the whole group
// axis; results stay bitwise-identical to MarketplaceUnfairness. With
// `parallelism` > 1, (query, location) columns are evaluated on that many
// threads of the shared ThreadPool (cells are disjoint, datasets are read
// only; results are bitwise-identical to the serial build). Errors: only on
// structurally invalid input (bad options, bad axes) — per-cell NotFound is
// expected and absorbed.
Result<UnfairnessCube> BuildMarketplaceCube(const MarketplaceDataset& data,
                                            const GroupSpace& space,
                                            MarketMeasure measure,
                                            const MeasureOptions& options = {},
                                            const CubeAxes& axes = {},
                                            size_t parallelism = 1);

Result<UnfairnessCube> BuildSearchCube(const SearchDataset& data,
                                       const GroupSpace& space,
                                       SearchMeasure measure,
                                       const MeasureOptions& options = {},
                                       const CubeAxes& axes = {},
                                       size_t parallelism = 1);

// Bounded-memory variants of the two builders (see ShardedBuildOptions).
// Column values are bitwise-identical to the in-memory builds: the same
// EvaluateMarketplaceColumn / EvaluateSearchColumn code paths run, only the
// destination differs. Errors: InvalidArgument on a null sink or bad
// options/axes, plus whatever the sink's Consume returns (first failure
// stops the build).
Status BuildMarketplaceCubeSharded(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const ShardedBuildOptions& sharded,
                                   CubeColumnSink* sink);
Status BuildSearchCubeSharded(const SearchDataset& data,
                              const GroupSpace& space, SearchMeasure measure,
                              const MeasureOptions& options,
                              const CubeAxes& axes,
                              const ShardedBuildOptions& sharded,
                              CubeColumnSink* sink);

// One (query, location) column by cube-axis position; the unit of delta
// recomputation (and of the column epochs above).
struct CubeColumnRef {
  size_t query_pos = 0;
  size_t location_pos = 0;
};

// Delta builds: evaluate ONLY the listed columns over the resolved axes and
// stream them through the same CubeColumnSink seam the sharded builders use
// — the G×Q×L tensor never materializes, and column values are bitwise
// identical to the full builders' (same EvaluateMarketplaceColumn /
// EvaluateSearchColumn code paths). Columns are fanned out on up to
// `parallelism` threads of the shared pool; Consume sees each column exactly
// once, in no particular order. Errors: InvalidArgument on a null sink, bad
// axes, or a column position outside the resolved axes.
Status BuildMarketplaceCubeColumns(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const std::vector<CubeColumnRef>& columns,
                                   size_t parallelism, CubeColumnSink* sink);
// Variant taking a caller-maintained MarketplaceGroupMembership table, the
// amortization seam for tight delta loops (MarketplaceCubeMaintainer keeps
// one per dataset version and updates it instead of relabeling every worker
// per upsert). `membership` must cover every worker the touched rankings
// list. The parameterless variant above builds a fresh table per call.
Status BuildMarketplaceCubeColumns(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   const MarketplaceGroupMembership& membership,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const std::vector<CubeColumnRef>& columns,
                                   size_t parallelism, CubeColumnSink* sink);
Status BuildSearchCubeColumns(const SearchDataset& data,
                              const GroupSpace& space, SearchMeasure measure,
                              const MeasureOptions& options,
                              const CubeAxes& axes,
                              const std::vector<CubeColumnRef>& columns,
                              size_t parallelism, CubeColumnSink* sink);

// Incremental maintenance: re-evaluates the group cells of one
// (query, location) column after its underlying ranking changed (a crawl
// refresh); triples that became undefined are cleared. Pair with
// IndexSet::RefreshColumn to keep the inverted lists in sync. Builds one
// MarketplaceGroupMembership table and shares one MarketplaceCellBatch
// across the column; with `parallelism` > 1 the group cells are evaluated
// on the shared ThreadPool (no per-call thread spawns, so tight refresh
// loops stay cheap).
// Errors: InvalidArgument on out-of-range positions or bad options.
Status RefreshMarketplaceColumn(const MarketplaceDataset& data,
                                const GroupSpace& space, MarketMeasure measure,
                                const MeasureOptions& options,
                                UnfairnessCube* cube, size_t query_pos,
                                size_t location_pos, size_t parallelism = 1);

// Search-side twin of RefreshMarketplaceColumn (e.g. after a study collected
// new runs for one (term, location)).
Status RefreshSearchColumn(const SearchDataset& data, const GroupSpace& space,
                           SearchMeasure measure,
                           const MeasureOptions& options, UnfairnessCube* cube,
                           size_t query_pos, size_t location_pos,
                           size_t parallelism = 1);

}  // namespace fairjob

#endif  // FAIRJOB_CORE_UNFAIRNESS_CUBE_H_
