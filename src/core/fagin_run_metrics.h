#ifndef FAIRJOB_CORE_FAGIN_RUN_METRICS_H_
#define FAIRJOB_CORE_FAGIN_RUN_METRICS_H_

#include <chrono>

#include "common/metrics.h"
#include "core/fagin.h"

namespace fairjob {
namespace fagin_internal {

// Run-scope frame shared by every member of the Fagin family (fagin.cc,
// fagin_family.cc): redirects a null caller `stats` to local storage so the
// metrics layer always has access counts, times the run, and publishes via
// RecordFaginMetrics on destruction. When metrics are disabled the frame
// costs one relaxed atomic load and no clock reads.
class MeteredRun {
 public:
  MeteredRun(const char* algorithm, FaginStats** stats)
      : algorithm_(algorithm), timed_(MetricsRegistry::Global().enabled()) {
    if (*stats == nullptr) *stats = &local_;
    stats_ = *stats;
    if (timed_) start_ = std::chrono::steady_clock::now();
  }
  ~MeteredRun() {
    if (!timed_) return;
    RecordFaginMetrics(algorithm_, *stats_,
                       std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

  MeteredRun(const MeteredRun&) = delete;
  MeteredRun& operator=(const MeteredRun&) = delete;

 private:
  const char* algorithm_;
  bool timed_;
  FaginStats local_;
  FaginStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fagin_internal
}  // namespace fairjob

#endif  // FAIRJOB_CORE_FAGIN_RUN_METRICS_H_
