#include "core/report.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "core/explain.h"
#include "core/stats.h"

namespace fairjob {
namespace {

const char* DimensionPlural(Dimension d) {
  switch (d) {
    case Dimension::kGroup:
      return "groups";
    case Dimension::kQuery:
      return "queries";
    case Dimension::kLocation:
      return "locations";
  }
  return "?";
}

// One "Name | d | [CI]" markdown table for a direction along a dimension.
Status AppendTopKSection(const FBox& fbox, Dimension dim, size_t k,
                         RankDirection direction,
                         const AuditReportOptions& options, Rng* rng,
                         std::string* out) {
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<FBox::NamedAnswer> answers,
                           fbox.TopK(dim, k, direction));
  *out += direction == RankDirection::kMostUnfair ? "### Least fairly treated "
                                                  : "### Fairest ";
  *out += DimensionPlural(dim);
  *out += "\n\n";
  bool with_ci = options.bootstrap_resamples > 0;
  *out += with_ci ? "| # | Name | d | 95% CI |\n|---|---|---|---|\n"
                  : "| # | Name | d |\n|---|---|---|\n";
  for (size_t i = 0; i < answers.size(); ++i) {
    *out += "| " + std::to_string(i + 1) + " | " + answers[i].name + " | " +
            FormatDouble(answers[i].value, 4) + " |";
    if (with_ci) {
      FAIRJOB_ASSIGN_OR_RETURN(size_t pos, fbox.PosOf(dim, answers[i].name));
      FAIRJOB_ASSIGN_OR_RETURN(
          ConfidenceInterval ci,
          BootstrapAggregate(fbox.cube(), dim, pos, {}, {},
                             options.bootstrap_resamples, options.confidence,
                             rng));
      *out += " [" + FormatDouble(ci.lo, 4) + ", " + FormatDouble(ci.hi, 4) +
              "] |";
    }
    *out += "\n";
  }
  *out += "\n";
  return Status::OK();
}

}  // namespace

Result<std::string> GenerateAuditReport(const FBox& fbox) {
  return GenerateAuditReport(fbox, AuditReportOptions());
}

Result<std::string> GenerateAuditReport(const FBox& fbox,
                                        const AuditReportOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("report top_k must be positive");
  }
  Rng rng(options.seed);
  const UnfairnessCube& cube = fbox.cube();

  std::string out = "# " + options.title + "\n\n";
  out += "Cube: " + std::to_string(cube.axis_size(Dimension::kGroup)) +
         " groups × " + std::to_string(cube.axis_size(Dimension::kQuery)) +
         " queries × " + std::to_string(cube.axis_size(Dimension::kLocation)) +
         " locations; " + std::to_string(cube.num_present()) + " of " +
         std::to_string(cube.num_cells()) + " cells defined.\n\n";

  for (Dimension dim :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    FAIRJOB_RETURN_IF_ERROR(AppendTopKSection(
        fbox, dim, options.top_k, RankDirection::kMostUnfair, options, &rng,
        &out));
    if (options.include_fairest) {
      FAIRJOB_RETURN_IF_ERROR(AppendTopKSection(
          fbox, dim, options.top_k, RankDirection::kLeastUnfair, options,
          &rng, &out));
    }
  }

  if (options.coverage != nullptr &&
      (!options.coverage->low_support.empty() ||
       !options.coverage->absent.empty())) {
    out += "### Data-quality warnings\n\n";
    for (GroupId g : options.coverage->low_support) {
      const GroupCoverage& c =
          options.coverage->groups[static_cast<size_t>(g)];
      out += "* **" + fbox.NameOf(Dimension::kGroup, g) + "** averages " +
             FormatDouble(c.mean_members, 1) +
             " members per result list — its values are noise-dominated.\n";
    }
    for (GroupId g : options.coverage->absent) {
      out += "* **" + fbox.NameOf(Dimension::kGroup, g) +
             "** never appears in any observation.\n";
    }
    out += "\n";
  }

  // Comparison of the two extreme groups, broken down by location.
  size_t num_groups = cube.axis_size(Dimension::kGroup);
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<FBox::NamedAnswer> extremes,
                           fbox.TopK(Dimension::kGroup, num_groups));
  if (extremes.size() >= 2) {
    const std::string& worst = extremes.front().name;
    const std::string& best = extremes.back().name;
    Result<ComparisonResult> cmp = fbox.CompareByName(
        Dimension::kGroup, worst, best, Dimension::kLocation);
    if (cmp.ok()) {
      out += "### Comparison: " + worst + " vs " + best +
             " across locations\n\n";
      out += "Overall: " + FormatDouble(cmp->overall_d1, 4) + " vs " +
             FormatDouble(cmp->overall_d2, 4) + ". ";
      if (cmp->reversed.empty()) {
        out += "No location inverts the ordering.\n\n";
      } else {
        out += std::to_string(cmp->reversed.size()) +
               " location(s) invert the ordering:\n\n";
        out += "| Location | " + worst + " | " + best + " |\n|---|---|---|\n";
        for (const ComparisonRow& row : cmp->reversed) {
          out += "| " + fbox.NameOf(Dimension::kLocation, row.breakdown_id) +
                 " | " + FormatDouble(row.d1, 4) + " | " +
                 FormatDouble(row.d2, 4) + " |\n";
        }
        out += "\n";
      }
    }

    if (options.drilldown_cells > 0) {
      FAIRJOB_ASSIGN_OR_RETURN(size_t worst_pos,
                               fbox.PosOf(Dimension::kGroup, worst));
      FAIRJOB_ASSIGN_OR_RETURN(
          std::vector<CellContribution> cells,
          TopContributingCells(cube, Dimension::kGroup, worst_pos,
                               options.drilldown_cells));
      out += "### Where " + worst + " is treated worst\n\n";
      out += "| Query | Location | d |\n|---|---|---|\n";
      for (const CellContribution& cell : cells) {
        out += "| " +
               fbox.NameOf(Dimension::kQuery,
                           cube.axis_id(Dimension::kQuery, cell.query_pos)) +
               " | " +
               fbox.NameOf(Dimension::kLocation,
                           cube.axis_id(Dimension::kLocation,
                                        cell.location_pos)) +
               " | " + FormatDouble(cell.value, 4) + " |\n";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace fairjob
