#ifndef FAIRJOB_CORE_DATA_MODEL_H_
#define FAIRJOB_CORE_DATA_MODEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/attribute_schema.h"
#include "ranking/kendall_tau.h"

namespace fairjob {

using QueryId = int32_t;
using LocationId = int32_t;
using WorkerId = int32_t;
using UserId = int32_t;

// Bidirectional string <-> dense id mapping for queries, locations, workers,
// users and documents.
class Vocabulary {
 public:
  // Returns the existing id or assigns the next dense id.
  int32_t GetOrAdd(std::string_view name);

  // Errors: NotFound.
  Result<int32_t> Find(std::string_view name) const;

  const std::string& NameOf(int32_t id) const {
    return names_[static_cast<size_t>(id)];
  }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> ids_;
};

// Key for per-(query, location) observations.
struct QueryLocation {
  QueryId query;
  LocationId location;

  friend bool operator==(const QueryLocation& a, const QueryLocation& b) {
    return a.query == b.query && a.location == b.location;
  }
  struct Hash {
    size_t operator()(const QueryLocation& ql) const {
      return static_cast<size_t>(ql.query) * 0x9e3779b97f4a7c15ULL +
             static_cast<size_t>(ql.location);
    }
  };
};

// One marketplace result page: workers best-first, with optional scores
// f_q^l(w) parallel to `workers` (empty when the site exposes only ranks).
struct MarketRanking {
  std::vector<WorkerId> workers;
  std::vector<double> scores;
};

// A TaskRabbit-style dataset: a worker population with demographics and a
// ranked worker list per (query, location).
class MarketplaceDataset {
 public:
  explicit MarketplaceDataset(AttributeSchema schema)
      : schema_(std::move(schema)) {}

  const AttributeSchema& schema() const { return schema_; }

  // Registers a worker. Errors: InvalidArgument on invalid demographics,
  // AlreadyExists on duplicate names.
  Result<WorkerId> AddWorker(std::string_view name, Demographics demographics);

  size_t num_workers() const { return demographics_.size(); }
  const Demographics& worker_demographics(WorkerId w) const {
    return demographics_[static_cast<size_t>(w)];
  }
  const std::vector<Demographics>& all_demographics() const {
    return demographics_;
  }
  const Vocabulary& workers() const { return workers_; }

  Vocabulary& queries() { return queries_; }
  const Vocabulary& queries() const { return queries_; }
  Vocabulary& locations() { return locations_; }
  const Vocabulary& locations() const { return locations_; }

  // Stores the result list for (q, l). Errors: InvalidArgument on unknown
  // worker ids, duplicate workers within the list, or a scores vector whose
  // length disagrees with the worker list.
  Status SetRanking(QueryId q, LocationId l, MarketRanking ranking);

  // The exact checks SetRanking applies, without mutating anything — lets
  // batch ingestion (serve/incremental.h) validate a whole crawl batch
  // before applying any row of it.
  Status ValidateRanking(const MarketRanking& ranking) const;

  // Null when (q, l) was never observed.
  const MarketRanking* GetRanking(QueryId q, LocationId l) const;

  size_t num_rankings() const { return rankings_.size(); }

  // Every observed (query, location) pair, sorted for determinism.
  std::vector<QueryLocation> RankedPairs() const;

 private:
  AttributeSchema schema_;
  Vocabulary workers_;
  Vocabulary queries_;
  Vocabulary locations_;
  std::vector<Demographics> demographics_;
  std::unordered_map<QueryLocation, MarketRanking, QueryLocation::Hash>
      rankings_;
};

// One personalized result list observed for a user (a search-engine run of
// query q at location l). Users may contribute several observations per
// (q, l) — e.g. repeated runs or alternative search-term formulations.
struct SearchObservation {
  UserId user;
  RankedList results;  // document/job ids, best first
};

// A Google-job-search-style dataset: users with demographics and, per
// (query, location), the personalized lists collected for them.
class SearchDataset {
 public:
  explicit SearchDataset(AttributeSchema schema) : schema_(std::move(schema)) {}

  const AttributeSchema& schema() const { return schema_; }

  Result<UserId> AddUser(std::string_view name, Demographics demographics);

  size_t num_users() const { return demographics_.size(); }
  const Demographics& user_demographics(UserId u) const {
    return demographics_[static_cast<size_t>(u)];
  }
  const std::vector<Demographics>& all_demographics() const {
    return demographics_;
  }
  const Vocabulary& users() const { return users_; }

  Vocabulary& queries() { return queries_; }
  const Vocabulary& queries() const { return queries_; }
  Vocabulary& locations() { return locations_; }
  const Vocabulary& locations() const { return locations_; }

  // Appends an observation. Errors: InvalidArgument on unknown user or an
  // empty / duplicate-bearing result list.
  Status AddObservation(QueryId q, LocationId l, SearchObservation obs);

  // Replaces the whole observation set of (q, l) — the delta-ingestion seam
  // for study snapshots (serve/incremental.h): a fresh study run for one
  // cell supersedes whatever was collected before. An empty vector removes
  // the cell (it becomes unobserved). Validation runs over the entire
  // vector before anything mutates, so a failed call leaves the dataset
  // untouched. Errors: same conditions as AddObservation.
  Status SetObservations(QueryId q, LocationId l,
                         std::vector<SearchObservation> observations);

  // The exact checks SetObservations applies, without mutating anything —
  // lets batch ingestion validate a whole study snapshot before applying
  // any cell of it.
  Status ValidateObservations(
      const std::vector<SearchObservation>& observations) const;

  // Null when (q, l) has no observations.
  const std::vector<SearchObservation>* GetObservations(QueryId q,
                                                        LocationId l) const;

  size_t num_observation_cells() const { return observations_.size(); }

  // Every observed (query, location) pair, sorted for determinism.
  std::vector<QueryLocation> ObservedPairs() const;

 private:
  AttributeSchema schema_;
  Vocabulary users_;
  Vocabulary queries_;
  Vocabulary locations_;
  std::vector<Demographics> demographics_;
  std::unordered_map<QueryLocation, std::vector<SearchObservation>,
                     QueryLocation::Hash>
      observations_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_DATA_MODEL_H_
