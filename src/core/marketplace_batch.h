#ifndef FAIRJOB_CORE_MARKETPLACE_BATCH_H_
#define FAIRJOB_CORE_MARKETPLACE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"
#include "core/unfairness_measures.h"

namespace fairjob {

// Per-worker group membership bitmaps, hoisted across (query, location)
// columns — the marketplace twin of the search cube's SearchGroupMembership.
// Whether a worker matches a group label depends only on demographics, never
// on the column, so the O(G · workers) label matching is done once per
// dataset version instead of once per cell; per-cell membership becomes one
// word probe per (group, position). Rows are bit-packed (bit w of row g =
// "worker w is in group g"), 8x smaller than a byte table and directly
// usable as the input of the simd:: bitmap kernels.
//
// Lifecycle: built once per dataset version (cube builders construct one per
// build; MarketplaceCubeMaintainer keeps one alive) and extended by Update
// when workers were added. Demographics are immutable after AddWorker, so an
// update only labels the NEW workers — existing bits are carried over — and
// the row layout is a pure function of the worker count, which makes an
// incrementally-updated table operator== identical to one rebuilt from
// scratch (asserted in tests/marketplace_batch_test.cc).
class MarketplaceGroupMembership {
 public:
  MarketplaceGroupMembership(const MarketplaceDataset& data,
                             const GroupSpace& space);

  // Extends the table over workers added to `data` since construction (or
  // the last Update); a no-op when the worker count is unchanged. `space`
  // must be the one the table was built with. Not thread-safe against
  // concurrent Matches/group_bits readers — update between builds, exactly
  // like the dataset itself.
  void Update(const MarketplaceDataset& data, const GroupSpace& space);

  size_t num_workers() const { return num_workers_; }
  size_t num_groups() const { return num_groups_; }
  // Words per bitmap row; bit (w % 64) of word (w / 64) is worker w.
  size_t words_per_group() const { return words_per_group_; }
  const uint64_t* group_bits(GroupId g) const {
    return words_.data() + static_cast<size_t>(g) * words_per_group_;
  }

  bool Matches(GroupId g, WorkerId w) const {
    const size_t worker = static_cast<size_t>(w);
    return (group_bits(g)[worker >> 6] >> (worker & 63)) & 1;
  }

  // Exact-state comparison (layout is deterministic, so "incrementally
  // updated" == "freshly built" is a meaningful assertion).
  friend bool operator==(const MarketplaceGroupMembership& a,
                         const MarketplaceGroupMembership& b) {
    return a.num_workers_ == b.num_workers_ && a.words_ == b.words_;
  }
  friend bool operator!=(const MarketplaceGroupMembership& a,
                         const MarketplaceGroupMembership& b) {
    return !(a == b);
  }

 private:
  // Labels workers [first, num_workers_) into the already-sized rows.
  void LabelNewWorkers(const MarketplaceDataset& data, const GroupSpace& space,
                       size_t first);

  size_t num_workers_ = 0;
  size_t num_groups_ = 0;
  size_t words_per_group_ = 0;
  std::vector<uint64_t> words_;  // num_groups_ rows of words_per_group_
};

// Shared per-(query, location) state for evaluating ONE marketplace measure
// across a whole group axis — the batched successor of
// MarketplaceCellContext. The context still label-matches every worker
// against every group per cell and re-derives position bias and histogram
// bins per group; the batch instead computes, once per cell:
//
//  * a per-position probe arena (membership word index + mask of each ranked
//    worker), turning group membership into bitmap probes;
//  * per-group position bitmaps, swept by the simd:: kernels —
//    CompressPositions for ascending member positions (exposure),
//    MaskedBinCount to scatter precomputed per-position histogram bin
//    indices into per-group integer counts (EMD);
//  * position bias from the process-shared PositionBiasTable (log-inverse
//    model) instead of per-(cell × group × position) transcendentals;
//  * for EMD, each group's renormalized distribution, making a comparable
//    pair O(bins) with zero allocations (the reference allocates four
//    vectors per pair inside Emd1D).
//
// Only O(G) state is retained — member counts, exposure/relevance partial
// sums or renormalized histograms — so a batch is as cheap to keep per
// column task as the context was.
//
// Bitwise contract: Unfairness(g) accumulates exactly the same FP terms in
// the same order as MarketplaceCellContext::Unfairness and
// MarketplaceUnfairness (integer histogram counts are exact in double, the
// bias table is filled by the same expression ExposureAtRank evaluates, and
// all position sweeps run in the reference's ascending order), so results —
// including the missing-cell pattern and exact NotFound messages — are
// bit-identical, not approximately equal. Cross-checked in
// tests/marketplace_batch_test.cc and enforced by bench_cube_build.
//
// Immutable after Make and borrows only the GroupSpace, so it may be shared
// freely across threads.
class MarketplaceCellBatch {
 public:
  // Precomputes the shared state for one (query, location) ranking under one
  // measure. `ranking` may be the (possibly null) result of
  // MarketplaceDataset::GetRanking; `membership` must cover every worker the
  // ranking lists (i.e. be built/updated from the same dataset version).
  // Errors: InvalidArgument on malformed options or a stale membership
  // table; NotFound when ranking is null or empty (the whole column is
  // undefined — callers clear the cells).
  static Result<MarketplaceCellBatch> Make(
      const GroupSpace& space, const MarketplaceGroupMembership& membership,
      const MarketRanking* ranking, MarketMeasure measure,
      const MeasureOptions& options);

  // d<g,q,l> for this cell under the measure fixed at Make; bitwise-identical
  // to MarketplaceUnfairness on the same triple. Errors: NotFound when the
  // triple is undefined (g or every comparable group has no members in the
  // ranking).
  Result<double> Unfairness(GroupId g) const;

  // Number of g's members in the ranking (0 = the group's cells are missing).
  size_t member_count(GroupId g) const {
    return member_counts_[static_cast<size_t>(g)];
  }

 private:
  MarketplaceCellBatch() = default;

  Result<double> Emd(GroupId g) const;
  Result<double> Exposure(GroupId g) const;

  const GroupSpace* space_ = nullptr;
  MarketMeasure measure_ = MarketMeasure::kEmd;
  std::vector<uint32_t> member_counts_;  // per group

  // kEmd: per-group renormalized distributions (G × bins_, row-major; rows
  // of memberless groups stay zero and are never read).
  size_t bins_ = 0;
  std::vector<double> renormalized_;

  // kExposure: per-group Σ position bias / Σ worker value, ascending order.
  std::vector<double> exposure_sums_;
  std::vector<double> relevance_sums_;
};

}  // namespace fairjob

#endif  // FAIRJOB_CORE_MARKETPLACE_BATCH_H_
