#include "core/trend.h"

#include <algorithm>
#include <cmath>

namespace fairjob {

Status TrendTracker::RecordEpoch(const UnfairnessCube& cube) {
  size_t n = cube.axis_size(dim_);
  if (!epochs_.empty() && n != epochs_.front().size()) {
    return Status::InvalidArgument(
        "cube axis size disagrees with previously recorded epochs");
  }
  std::vector<std::optional<double>> snapshot(n);
  for (size_t pos = 0; pos < n; ++pos) {
    snapshot[pos] = cube.AxisAverage(dim_, pos);
  }
  epochs_.push_back(std::move(snapshot));
  return Status::OK();
}

std::vector<std::optional<double>> TrendTracker::Series(size_t pos) const {
  std::vector<std::optional<double>> series;
  series.reserve(epochs_.size());
  for (const auto& epoch : epochs_) {
    series.push_back(pos < epoch.size() ? epoch[pos] : std::nullopt);
  }
  return series;
}

Result<std::vector<TrendTracker::Drift>> TrendTracker::TopDrifts(
    size_t k) const {
  if (epochs_.size() < 2) {
    return Status::FailedPrecondition("need at least two recorded epochs");
  }
  const auto& prev = epochs_[epochs_.size() - 2];
  const auto& last = epochs_.back();
  std::vector<Drift> drifts;
  for (size_t pos = 0; pos < last.size(); ++pos) {
    if (prev[pos].has_value() && last[pos].has_value()) {
      drifts.push_back(Drift{pos, *prev[pos], *last[pos]});
    }
  }
  std::sort(drifts.begin(), drifts.end(), [](const Drift& a, const Drift& b) {
    double da = std::fabs(a.delta());
    double db = std::fabs(b.delta());
    if (da != db) return da > db;
    return a.pos < b.pos;
  });
  if (drifts.size() > k) drifts.resize(k);
  return drifts;
}

Result<std::vector<std::pair<size_t, size_t>>> TrendTracker::RankCrossings()
    const {
  if (epochs_.size() < 2) {
    return Status::FailedPrecondition("need at least two recorded epochs");
  }
  const auto& prev = epochs_[epochs_.size() - 2];
  const auto& last = epochs_.back();
  std::vector<std::pair<size_t, size_t>> crossings;
  for (size_t a = 0; a < last.size(); ++a) {
    if (!prev[a].has_value() || !last[a].has_value()) continue;
    for (size_t b = 0; b < last.size(); ++b) {
      if (a == b || !prev[b].has_value() || !last[b].has_value()) continue;
      if (*prev[a] < *prev[b] && *last[a] > *last[b]) {
        crossings.emplace_back(a, b);
      }
    }
  }
  return crossings;
}

}  // namespace fairjob
