#include "core/unfairness_cube.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "ranking/jaccard.h"

namespace fairjob {
namespace {

Status ValidateAxis(const std::vector<int32_t>& ids, const char* name) {
  if (ids.empty()) {
    return Status::InvalidArgument(std::string("cube axis '") + name +
                                   "' is empty");
  }
  std::unordered_set<int32_t> seen;
  for (int32_t id : ids) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument(std::string("cube axis '") + name +
                                     "' repeats id " + std::to_string(id));
    }
  }
  return Status::OK();
}

std::vector<int32_t> DefaultIds(size_t n) {
  std::vector<int32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int32_t>(i);
  return ids;
}

// Iteration order for a selector: its positions, or 0..size-1 when "all".
std::vector<size_t> ResolvePositions(const AxisSelector& sel, size_t size) {
  if (!sel.all()) return sel.positions;
  std::vector<size_t> all(size);
  for (size_t i = 0; i < size; ++i) all[i] = i;
  return all;
}

}  // namespace

const char* DimensionName(Dimension d) {
  switch (d) {
    case Dimension::kGroup:
      return "group";
    case Dimension::kQuery:
      return "query";
    case Dimension::kLocation:
      return "location";
  }
  return "?";
}

Result<UnfairnessCube> UnfairnessCube::Make(std::vector<GroupId> groups,
                                            std::vector<QueryId> queries,
                                            std::vector<LocationId> locations) {
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(groups, "group"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(queries, "query"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(locations, "location"));
  UnfairnessCube cube;
  cube.ids_[0] = std::move(groups);
  cube.ids_[1] = std::move(queries);
  cube.ids_[2] = std::move(locations);
  cube.values_.assign(
      cube.ids_[0].size() * cube.ids_[1].size() * cube.ids_[2].size(),
      std::nullopt);
  return cube;
}

Result<size_t> UnfairnessCube::PosOf(Dimension d, int32_t id) const {
  const std::vector<int32_t>& axis = ids_[AxisIndex(d)];
  for (size_t i = 0; i < axis.size(); ++i) {
    if (axis[i] == id) return i;
  }
  return Status::NotFound(std::string("id ") + std::to_string(id) +
                          " not on cube axis '" + DimensionName(d) + "'");
}

size_t UnfairnessCube::num_present() const {
  size_t n = 0;
  for (const auto& v : values_) {
    if (v.has_value()) ++n;
  }
  return n;
}

std::optional<double> UnfairnessCube::Average(
    const AxisSelector& groups, const AxisSelector& queries,
    const AxisSelector& locations) const {
  std::vector<size_t> gs = ResolvePositions(groups, ids_[0].size());
  std::vector<size_t> qs = ResolvePositions(queries, ids_[1].size());
  std::vector<size_t> ls = ResolvePositions(locations, ids_[2].size());
  double sum = 0.0;
  size_t count = 0;
  for (size_t g : gs) {
    for (size_t q : qs) {
      for (size_t l : ls) {
        std::optional<double> v = Get(g, q, l);
        if (v.has_value()) {
          sum += *v;
          ++count;
        }
      }
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

std::optional<double> UnfairnessCube::AxisAverage(Dimension d,
                                                  size_t pos) const {
  AxisSelector fixed = AxisSelector::Single(pos);
  switch (d) {
    case Dimension::kGroup:
      return Average(fixed, AxisSelector::All(), AxisSelector::All());
    case Dimension::kQuery:
      return Average(AxisSelector::All(), fixed, AxisSelector::All());
    case Dimension::kLocation:
      return Average(AxisSelector::All(), AxisSelector::All(), fixed);
  }
  return std::nullopt;
}

namespace {

// Runs fn(i, j) for every pair in [0, n1) × [0, n2), on `parallelism`
// threads when > 1. The first non-OK status wins and stops remaining work;
// fn must only touch disjoint state per pair (the cube builders write
// disjoint cells).
Status ParallelForPairs(size_t n1, size_t n2, size_t parallelism,
                        const std::function<Status(size_t, size_t)>& fn) {
  size_t total = n1 * n2;
  if (parallelism <= 1 || total <= 1) {
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j < n2; ++j) {
        FAIRJOB_RETURN_IF_ERROR(fn(i, j));
      }
    }
    return Status::OK();
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  Status first_error;
  auto worker = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= total) return;
      Status s = fn(index / n2, index % n2);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = s;
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  size_t num_threads = std::min(parallelism, total);
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return first_error;
}

Result<CubeAxes> ResolveAxes(const CubeAxes& axes, size_t num_groups,
                             size_t num_queries, size_t num_locations) {
  CubeAxes out = axes;
  if (out.groups.empty()) out.groups = DefaultIds(num_groups);
  if (out.queries.empty()) out.queries = DefaultIds(num_queries);
  if (out.locations.empty()) out.locations = DefaultIds(num_locations);
  if (num_queries == 0 || num_locations == 0) {
    return Status::InvalidArgument(
        "dataset has no queries or no locations to build a cube over");
  }
  return out;
}

}  // namespace

Result<UnfairnessCube> BuildMarketplaceCube(const MarketplaceDataset& data,
                                            const GroupSpace& space,
                                            MarketMeasure measure,
                                            const MeasureOptions& options,
                                            const CubeAxes& axes,
                                            size_t parallelism) {
  FAIRJOB_ASSIGN_OR_RETURN(
      CubeAxes resolved,
      ResolveAxes(axes, space.num_groups(), data.queries().size(),
                  data.locations().size()));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      UnfairnessCube::Make(resolved.groups, resolved.queries,
                           resolved.locations));
  Status built = ParallelForPairs(
      resolved.queries.size(), resolved.locations.size(), parallelism,
      [&](size_t q, size_t l) -> Status {
        for (size_t g = 0; g < resolved.groups.size(); ++g) {
          Result<double> v = MarketplaceUnfairness(
              data, space, resolved.groups[g], resolved.queries[q],
              resolved.locations[l], measure, options);
          if (v.ok()) {
            cube.Set(g, q, l, *v);
          } else if (v.status().code() != StatusCode::kNotFound) {
            return v.status();
          }
        }
        return Status::OK();
      });
  FAIRJOB_RETURN_IF_ERROR(built);
  return cube;
}

Status RefreshMarketplaceColumn(const MarketplaceDataset& data,
                                const GroupSpace& space, MarketMeasure measure,
                                const MeasureOptions& options,
                                UnfairnessCube* cube, size_t query_pos,
                                size_t location_pos) {
  if (cube == nullptr) return Status::InvalidArgument("null cube");
  if (query_pos >= cube->axis_size(Dimension::kQuery) ||
      location_pos >= cube->axis_size(Dimension::kLocation)) {
    return Status::InvalidArgument("column position out of range");
  }
  QueryId q = cube->axis_id(Dimension::kQuery, query_pos);
  LocationId l = cube->axis_id(Dimension::kLocation, location_pos);
  for (size_t g = 0; g < cube->axis_size(Dimension::kGroup); ++g) {
    GroupId group = cube->axis_id(Dimension::kGroup, g);
    Result<double> v =
        MarketplaceUnfairness(data, space, group, q, l, measure, options);
    if (v.ok()) {
      cube->Set(g, query_pos, location_pos, *v);
    } else if (v.status().code() == StatusCode::kNotFound) {
      cube->Clear(g, query_pos, location_pos);
    } else {
      return v.status();
    }
  }
  return Status::OK();
}

Status RefreshSearchColumn(const SearchDataset& data, const GroupSpace& space,
                           SearchMeasure measure,
                           const MeasureOptions& options, UnfairnessCube* cube,
                           size_t query_pos, size_t location_pos) {
  if (cube == nullptr) return Status::InvalidArgument("null cube");
  if (query_pos >= cube->axis_size(Dimension::kQuery) ||
      location_pos >= cube->axis_size(Dimension::kLocation)) {
    return Status::InvalidArgument("column position out of range");
  }
  QueryId q = cube->axis_id(Dimension::kQuery, query_pos);
  LocationId l = cube->axis_id(Dimension::kLocation, location_pos);
  for (size_t g = 0; g < cube->axis_size(Dimension::kGroup); ++g) {
    GroupId group = cube->axis_id(Dimension::kGroup, g);
    Result<double> v =
        SearchUnfairness(data, space, group, q, l, measure, options);
    if (v.ok()) {
      cube->Set(g, query_pos, location_pos, *v);
    } else if (v.status().code() == StatusCode::kNotFound) {
      cube->Clear(g, query_pos, location_pos);
    } else {
      return v.status();
    }
  }
  return Status::OK();
}

Result<UnfairnessCube> BuildSearchCube(const SearchDataset& data,
                                       const GroupSpace& space,
                                       SearchMeasure measure,
                                       const MeasureOptions& options,
                                       const CubeAxes& axes,
                                       size_t parallelism) {
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      CubeAxes resolved,
      ResolveAxes(axes, space.num_groups(), data.queries().size(),
                  data.locations().size()));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      UnfairnessCube::Make(resolved.groups, resolved.queries,
                           resolved.locations));

  // Unlike the marketplace path, pairwise list distances dominate here and
  // are shared by every group at a cell: compute one distance matrix per
  // (query, location) and reuse it across the whole group axis. Semantics
  // are identical to calling SearchUnfairness per triple (cross-checked in
  // tests).
  Status built = ParallelForPairs(
      resolved.queries.size(), resolved.locations.size(), parallelism,
      [&](size_t q, size_t l) -> Status {
      const std::vector<SearchObservation>* obs = data.GetObservations(
          resolved.queries[q], resolved.locations[l]);
      if (obs == nullptr || obs->empty()) return Status::OK();
      size_t n = obs->size();

      std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          Result<double> d = SearchListDistance(measure, (*obs)[i].results,
                                                (*obs)[j].results, options);
          if (!d.ok()) return d.status();
          dist[i][j] = dist[j][i] = *d;
        }
      }

      // Observation indices per group, for every group that can appear as a
      // cube row or as someone's comparable.
      std::unordered_map<GroupId, std::vector<size_t>> members;
      auto members_of = [&](GroupId group) -> const std::vector<size_t>& {
        auto it = members.find(group);
        if (it != members.end()) return it->second;
        std::vector<size_t> indices;
        const GroupLabel& label = space.label(group);
        for (size_t i = 0; i < n; ++i) {
          if (label.Matches(data.user_demographics((*obs)[i].user))) {
            indices.push_back(i);
          }
        }
        return members.emplace(group, std::move(indices)).first->second;
      };

      for (size_t g = 0; g < resolved.groups.size(); ++g) {
        GroupId group = resolved.groups[g];
        const std::vector<size_t>& own = members_of(group);
        if (own.empty()) continue;
        double group_sum = 0.0;
        size_t group_count = 0;
        for (GroupId other : space.Comparables(group)) {
          const std::vector<size_t>& theirs = members_of(other);
          if (theirs.empty()) continue;
          double pair_sum = 0.0;
          for (size_t a : own) {
            for (size_t b : theirs) pair_sum += dist[a][b];
          }
          group_sum +=
              pair_sum / static_cast<double>(own.size() * theirs.size());
          ++group_count;
        }
        if (group_count > 0) {
          cube.Set(g, q, l, group_sum / static_cast<double>(group_count));
        }
      }
      return Status::OK();
      });
  FAIRJOB_RETURN_IF_ERROR(built);
  return cube;
}

}  // namespace fairjob
