#include "core/unfairness_cube.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/marketplace_batch.h"
#include "ranking/jaccard.h"
#include "ranking/list_batch.h"

namespace fairjob {
namespace {

Status ValidateAxis(const std::vector<int32_t>& ids, const char* name) {
  if (ids.empty()) {
    return Status::InvalidArgument(std::string("cube axis '") + name +
                                   "' is empty");
  }
  std::unordered_set<int32_t> seen;
  for (int32_t id : ids) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument(std::string("cube axis '") + name +
                                     "' repeats id " + std::to_string(id));
    }
  }
  return Status::OK();
}

std::vector<int32_t> DefaultIds(size_t n) {
  std::vector<int32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<int32_t>(i);
  return ids;
}

// Iteration order for a selector: its positions, or 0..size-1 when "all".
std::vector<size_t> ResolvePositions(const AxisSelector& sel, size_t size) {
  if (!sel.all()) return sel.positions;
  std::vector<size_t> all(size);
  for (size_t i = 0; i < size; ++i) all[i] = i;
  return all;
}

}  // namespace

const char* DimensionName(Dimension d) {
  switch (d) {
    case Dimension::kGroup:
      return "group";
    case Dimension::kQuery:
      return "query";
    case Dimension::kLocation:
      return "location";
  }
  return "?";
}

Result<UnfairnessCube> UnfairnessCube::Make(std::vector<GroupId> groups,
                                            std::vector<QueryId> queries,
                                            std::vector<LocationId> locations) {
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(groups, "group"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(queries, "query"));
  FAIRJOB_RETURN_IF_ERROR(ValidateAxis(locations, "location"));
  UnfairnessCube cube;
  cube.ids_[0] = std::move(groups);
  cube.ids_[1] = std::move(queries);
  cube.ids_[2] = std::move(locations);
  for (size_t axis = 0; axis < 3; ++axis) {
    cube.pos_of_[axis].reserve(cube.ids_[axis].size());
    for (size_t i = 0; i < cube.ids_[axis].size(); ++i) {
      cube.pos_of_[axis].emplace(cube.ids_[axis][i], i);
    }
  }
  cube.values_.assign(
      cube.ids_[0].size() * cube.ids_[1].size() * cube.ids_[2].size(),
      std::nullopt);
  cube.epochs_.assign(cube.ids_[1].size() * cube.ids_[2].size(), 0);
  return cube;
}

Result<size_t> UnfairnessCube::PosOf(Dimension d, int32_t id) const {
  const std::unordered_map<int32_t, size_t>& index = pos_of_[AxisIndex(d)];
  auto it = index.find(id);
  if (it != index.end()) return it->second;
  return Status::NotFound(std::string("id ") + std::to_string(id) +
                          " not on cube axis '" + DimensionName(d) + "'");
}

size_t UnfairnessCube::num_present() const {
  size_t n = 0;
  for (const auto& v : values_) {
    if (v.has_value()) ++n;
  }
  return n;
}

std::optional<double> UnfairnessCube::Average(
    const AxisSelector& groups, const AxisSelector& queries,
    const AxisSelector& locations) const {
  std::vector<size_t> gs = ResolvePositions(groups, ids_[0].size());
  std::vector<size_t> qs = ResolvePositions(queries, ids_[1].size());
  std::vector<size_t> ls = ResolvePositions(locations, ids_[2].size());
  double sum = 0.0;
  size_t count = 0;
  for (size_t g : gs) {
    for (size_t q : qs) {
      for (size_t l : ls) {
        std::optional<double> v = Get(g, q, l);
        if (v.has_value()) {
          sum += *v;
          ++count;
        }
      }
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

std::optional<double> UnfairnessCube::AxisAverage(Dimension d,
                                                  size_t pos) const {
  AxisSelector fixed = AxisSelector::Single(pos);
  switch (d) {
    case Dimension::kGroup:
      return Average(fixed, AxisSelector::All(), AxisSelector::All());
    case Dimension::kQuery:
      return Average(AxisSelector::All(), fixed, AxisSelector::All());
    case Dimension::kLocation:
      return Average(AxisSelector::All(), AxisSelector::All(), fixed);
  }
  return std::nullopt;
}

namespace {

// Runs fn(i) for every i in [0, n) on up to `parallelism` threads of the
// process-wide pool; serial calls never touch (or create) the pool. The
// first non-OK status wins and stops remaining work; fn must only touch
// disjoint state per index (the cube builders write disjoint cells).
Status ParallelFor(size_t n, size_t parallelism,
                   const std::function<Status(size_t)>& fn) {
  if (parallelism <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      FAIRJOB_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  return ThreadPool::Shared().ParallelFor(n, parallelism, fn);
}

// fn(i, j) over [0, n1) × [0, n2), same contract as ParallelFor.
Status ParallelForPairs(size_t n1, size_t n2, size_t parallelism,
                        const std::function<Status(size_t, size_t)>& fn) {
  if (n1 == 0 || n2 == 0) return Status::OK();
  return ParallelFor(n1 * n2, parallelism,
                     [&](size_t index) { return fn(index / n2, index % n2); });
}

Result<CubeAxes> ResolveAxes(const CubeAxes& axes, size_t num_groups,
                             size_t num_queries, size_t num_locations) {
  CubeAxes out = axes;
  if (out.groups.empty()) out.groups = DefaultIds(num_groups);
  if (out.queries.empty()) out.queries = DefaultIds(num_queries);
  if (out.locations.empty()) out.locations = DefaultIds(num_locations);
  if (num_queries == 0 || num_locations == 0) {
    return Status::InvalidArgument(
        "dataset has no queries or no locations to build a cube over");
  }
  return out;
}

// Evaluates one marketplace (query, location) column over `groups` into
// `out` (nullopt = undefined triple) via the batched engine
// (core/marketplace_batch.h): the hoisted membership table turns per-cell
// label matching into bitmap probes, and one MarketplaceCellBatch is shared
// across the whole group axis. Semantics are bitwise-identical to calling
// MarketplaceUnfairness per triple (cross-checked in
// tests/marketplace_batch_test.cc and enforced by bench_cube_build). `out`
// must be pre-sized to groups.size().
Status EvaluateMarketplaceColumn(const MarketplaceDataset& data,
                                 const GroupSpace& space,
                                 const MarketplaceGroupMembership& membership,
                                 MarketMeasure measure,
                                 const MeasureOptions& options, QueryId q,
                                 LocationId l,
                                 const std::vector<GroupId>& groups,
                                 std::vector<std::optional<double>>* out,
                                 size_t parallelism) {
  // Per-phase observability: batch construction (membership sweeps,
  // histogram scatter, bias/relevance sums) versus per-group evaluation.
  // cube.market.cell_context_us keeps its name across the engine swap so
  // dashboards show the construction phase continuously.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static LatencyHistogram* const column_us =
      metrics.histogram("cube.market.column_us");
  static LatencyHistogram* const context_us =
      metrics.histogram("cube.market.cell_context_us");
  static LatencyHistogram* const group_eval_us =
      metrics.histogram("cube.market.group_eval_us");
  static Counter* const cells_present =
      metrics.counter("cube.market.cells_present");
  static Counter* const cells_missing =
      metrics.counter("cube.market.cells_missing");
  ScopedTimer column_timer(column_us);
  TraceSpan span("market_column", "cube");

  Result<MarketplaceCellBatch> batch = [&] {
    ScopedTimer context_timer(context_us);
    return MarketplaceCellBatch::Make(space, membership, data.GetRanking(q, l),
                                      measure, options);
  }();
  if (!batch.ok()) {
    if (batch.status().code() == StatusCode::kNotFound) {
      for (auto& cell : *out) cell.reset();
      cells_missing->Add(out->size());
      return Status::OK();
    }
    return batch.status();
  }
  ScopedTimer group_timer(group_eval_us);
  Status evaluated =
      ParallelFor(groups.size(), parallelism, [&](size_t g) -> Status {
        Result<double> v = batch->Unfairness(groups[g]);
        if (v.ok()) {
          (*out)[g] = *v;
        } else if (v.status().code() == StatusCode::kNotFound) {
          (*out)[g].reset();
        } else {
          return v.status();
        }
        return Status::OK();
      });
  if (evaluated.ok()) {
    size_t present = 0;
    for (const auto& cell : *out) present += cell.has_value() ? 1 : 0;
    cells_present->Add(present);
    cells_missing->Add(out->size() - present);
  }
  return evaluated;
}

// Per-user group membership, hoisted across (query, location) columns:
// whether a user matches a group label depends only on demographics, so the
// O(G · users) label matching is done once per build instead of once per
// column (observation *indices* still differ per column and are derived
// from this table with flat probes).
class SearchGroupMembership {
 public:
  SearchGroupMembership(const SearchDataset& data, const GroupSpace& space)
      : num_users_(data.num_users()) {
    size_t num_groups = space.num_groups();
    member_.assign(num_groups * num_users_, 0);
    for (size_t g = 0; g < num_groups; ++g) {
      const GroupLabel& label = space.label(static_cast<GroupId>(g));
      for (size_t u = 0; u < num_users_; ++u) {
        if (label.Matches(data.user_demographics(static_cast<UserId>(u)))) {
          member_[g * num_users_ + u] = 1;
        }
      }
    }
  }

  bool Matches(GroupId g, UserId u) const {
    return member_[static_cast<size_t>(g) * num_users_ +
                   static_cast<size_t>(u)] != 0;
  }

 private:
  size_t num_users_;
  std::vector<uint8_t> member_;
};

// Index of the (i, j) entry, i < j, in an upper-triangle row-major layout
// over n items: row i starts after the i rows above it, which hold
// (n-1) + (n-2) + ... + (n-i) entries.
inline size_t TriangleIndex(size_t i, size_t j, size_t n) {
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

// Search-side twin: evaluates one (query, location) column over `groups`
// into `out`, filling the pairwise list-distance matrix once per cell via
// the batched engine (ranking/list_batch.h) — lists interned once, pair
// kernels allocation-free — and reusing it across the whole group axis.
// Only the upper triangle is stored (TriangleIndex), halving the matrix
// memory. With `parallelism` > 1 the O(n²) distance rows are computed on
// the pool, so a few large cells no longer serialize a whole build.
// Semantics are identical to calling SearchUnfairness per triple — bitwise,
// not approximately (cross-checked in tests/list_batch_test.cc and
// bench_measures_perf --batch_compare).
Status EvaluateSearchColumn(const SearchDataset& data, const GroupSpace& space,
                            const SearchGroupMembership& membership,
                            SearchMeasure measure,
                            const MeasureOptions& options, QueryId query,
                            LocationId location,
                            const std::vector<GroupId>& groups,
                            std::vector<std::optional<double>>* out,
                            size_t parallelism) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static LatencyHistogram* const column_us =
      metrics.histogram("cube.search.column_us");
  static LatencyHistogram* const matrix_us =
      metrics.histogram("cube.search.distance_matrix_us");
  static LatencyHistogram* const group_eval_us =
      metrics.histogram("cube.search.group_eval_us");
  static Counter* const cells_present =
      metrics.counter("cube.search.cells_present");
  static Counter* const cells_missing =
      metrics.counter("cube.search.cells_missing");
  static Counter* const triangle_entries =
      metrics.counter("cube.search.batch.triangle_entries");
  static Counter* const colsum_vectors =
      metrics.counter("cube.search.batch.colsum_vectors");
  // The batch path still feeds the per-measure invocation counters (one
  // bulk Add per cell); per-pair latency sampling is intentionally absent —
  // cube.search.distance_matrix_us covers the whole phase.
  static Counter* const measure_invocations[4] = {
      metrics.counter("measure.kendall_tau.invocations"),
      metrics.counter("measure.jaccard.invocations"),
      metrics.counter("measure.footrule.invocations"),
      metrics.counter("measure.rbo.invocations")};
  ScopedTimer column_timer(column_us);
  TraceSpan span("search_column", "cube");

  for (auto& cell : *out) cell.reset();
  const std::vector<SearchObservation>* obs =
      data.GetObservations(query, location);
  if (obs == nullptr || obs->empty()) {
    cells_missing->Add(out->size());
    return Status::OK();
  }
  size_t n = obs->size();
  if (n == 1) {
    // No pairs: a lone user cannot match both a group and one of its
    // comparables, so every cell of the column is undefined.
    cells_missing->Add(out->size());
    return Status::OK();
  }

  std::vector<const RankedList*> lists;
  lists.reserve(n);
  for (const SearchObservation& o : *obs) lists.push_back(&o.results);
  FAIRJOB_ASSIGN_OR_RETURN(ListDistanceBatch batch,
                           ListDistanceBatch::Make(lists));

  // Upper-triangle distance matrix, rows pool-parallel; each row reuses one
  // Scratch across its pair kernels.
  size_t num_pairs = n * (n - 1) / 2;
  std::vector<double> tri(num_pairs, 0.0);
  Status dist_status = [&] {
    ScopedTimer matrix_timer(matrix_us);
    TraceSpan matrix_span("distance_matrix", "cube");
    return ParallelFor(n, parallelism, [&](size_t i) -> Status {
      ListDistanceBatch::Scratch scratch;
      for (size_t j = i + 1; j < n; ++j) {
        Result<double> d = [&]() -> Result<double> {
          switch (measure) {
            case SearchMeasure::kKendallTau:
              return batch.KendallTauTopK(i, j, options.kendall_penalty,
                                          &scratch);
            case SearchMeasure::kJaccard:
              return batch.Jaccard(i, j);
            case SearchMeasure::kFootrule:
              return batch.FootruleTopK(i, j);
            case SearchMeasure::kRbo:
              return batch.Rbo(i, j, options.rbo_persistence);
          }
          return Status::InvalidArgument("unknown search measure");
        }();
        if (!d.ok()) return d.status();
        tri[TriangleIndex(i, j, n)] = *d;
      }
      return Status::OK();
    });
  }();
  FAIRJOB_RETURN_IF_ERROR(dist_status);
  size_t measure_index = static_cast<size_t>(measure);
  if (measure_index < 4) measure_invocations[measure_index]->Add(num_pairs);
  triangle_entries->Add(num_pairs);
  ScopedTimer group_timer(group_eval_us);

  auto dist_at = [&](size_t x, size_t y) -> double {
    if (x == y) return 0.0;
    return x < y ? tri[TriangleIndex(x, y, n)] : tri[TriangleIndex(y, x, n)];
  };

  // Observation indices per group (lazy; flat membership probes, no label
  // matching) for every group appearing as a cube row or as a comparable.
  size_t num_groups = space.num_groups();
  std::vector<std::vector<size_t>> members(num_groups);
  std::vector<uint8_t> members_done(num_groups, 0);
  auto members_of = [&](GroupId group) -> const std::vector<size_t>& {
    size_t gi = static_cast<size_t>(group);
    if (!members_done[gi]) {
      members_done[gi] = 1;
      for (size_t i = 0; i < n; ++i) {
        if (membership.Matches(group, (*obs)[i].user)) {
          members[gi].push_back(i);
        }
      }
    }
    return members[gi];
  };

  // Column-sum vectors, one per comparable group (lazy, shared across every
  // row that lists the group as comparable): colsum[g'][i] = Σ_{b ∈ g'}
  // D(i, b) with b ascending, so a group row later costs O(|own|) instead
  // of O(|own| · |theirs|). The b-ascending inner order keeps each entry
  // bitwise-identical to the per-triple row sums of SearchUnfairness.
  std::vector<std::vector<double>> colsum(num_groups);
  std::vector<uint8_t> colsum_done(num_groups, 0);
  auto colsum_of = [&](GroupId group) -> const std::vector<double>& {
    size_t gi = static_cast<size_t>(group);
    if (!colsum_done[gi]) {
      colsum_done[gi] = 1;
      colsum[gi].assign(n, 0.0);
      for (size_t b : members[gi]) {
        for (size_t i = 0; i < n; ++i) {
          if (i == b) continue;  // never queried: groups are disjoint
          colsum[gi][i] += dist_at(i, b);
        }
      }
      colsum_vectors->Add(1);
    }
    return colsum[gi];
  };

  for (size_t g = 0; g < groups.size(); ++g) {
    GroupId group = groups[g];
    const std::vector<size_t>& own = members_of(group);
    if (own.empty()) continue;
    double group_sum = 0.0;
    size_t group_count = 0;
    for (GroupId other : space.Comparables(group)) {
      const std::vector<size_t>& theirs = members_of(other);
      if (theirs.empty()) continue;
      const std::vector<double>& sums = colsum_of(other);
      double pair_sum = 0.0;
      for (size_t a : own) pair_sum += sums[a];
      group_sum += pair_sum / static_cast<double>(own.size() * theirs.size());
      ++group_count;
    }
    if (group_count > 0) {
      (*out)[g] = group_sum / static_cast<double>(group_count);
    }
  }
  size_t present = 0;
  for (const auto& cell : *out) present += cell.has_value() ? 1 : 0;
  cells_present->Add(present);
  cells_missing->Add(out->size() - present);
  return Status::OK();
}

// Build-level summary gauges shared by the two cube builders: wall-clock of
// the most recent build and its cell throughput (the "cells/sec" headline).
void RecordBuildSummary(const char* family, double elapsed_us, size_t cells) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  if (!metrics.enabled() || elapsed_us <= 0.0) return;
  std::string prefix = std::string("cube.") + family;
  metrics.gauge(prefix + ".last_build_ms")->Set(elapsed_us / 1e3);
  metrics.gauge(prefix + ".last_build_cells_per_sec")
      ->Set(static_cast<double>(cells) / (elapsed_us / 1e6));
}

}  // namespace

Result<UnfairnessCube> BuildMarketplaceCube(const MarketplaceDataset& data,
                                            const GroupSpace& space,
                                            MarketMeasure measure,
                                            const MeasureOptions& options,
                                            const CubeAxes& axes,
                                            size_t parallelism) {
  TraceSpan span("BuildMarketplaceCube", "cube");
  auto start = std::chrono::steady_clock::now();
  FAIRJOB_ASSIGN_OR_RETURN(
      CubeAxes resolved,
      ResolveAxes(axes, space.num_groups(), data.queries().size(),
                  data.locations().size()));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      UnfairnessCube::Make(resolved.groups, resolved.queries,
                           resolved.locations));
  // Worker group membership depends only on demographics, never on the
  // (query, location) column, so the label matching is hoisted out of the
  // column loop and shared read-only across all column tasks — the
  // marketplace twin of BuildSearchCube's hoist.
  MarketplaceGroupMembership membership(data, space);
  Status built = ParallelForPairs(
      resolved.queries.size(), resolved.locations.size(), parallelism,
      [&](size_t q, size_t l) -> Status {
        std::vector<std::optional<double>> column(resolved.groups.size());
        FAIRJOB_RETURN_IF_ERROR(EvaluateMarketplaceColumn(
            data, space, membership, measure, options, resolved.queries[q],
            resolved.locations[l], resolved.groups, &column,
            /*parallelism=*/1));
        for (size_t g = 0; g < column.size(); ++g) {
          if (column[g].has_value()) cube.Set(g, q, l, *column[g]);
        }
        return Status::OK();
      });
  FAIRJOB_RETURN_IF_ERROR(built);
  RecordBuildSummary("market",
                     std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count(),
                     cube.num_cells());
  return cube;
}

namespace {

// Shared frame of the two column-refresh entry points: validates positions,
// evaluates the column via `eval`, then applies set/clear to the cube.
Status RefreshColumn(
    UnfairnessCube* cube, size_t query_pos, size_t location_pos,
    const std::function<Status(QueryId, LocationId,
                               const std::vector<GroupId>&,
                               std::vector<std::optional<double>>*)>& eval) {
  if (cube == nullptr) return Status::InvalidArgument("null cube");
  if (query_pos >= cube->axis_size(Dimension::kQuery) ||
      location_pos >= cube->axis_size(Dimension::kLocation)) {
    return Status::InvalidArgument("column position out of range");
  }
  QueryId q = cube->axis_id(Dimension::kQuery, query_pos);
  LocationId l = cube->axis_id(Dimension::kLocation, location_pos);
  std::vector<GroupId> groups(cube->axis_size(Dimension::kGroup));
  for (size_t g = 0; g < groups.size(); ++g) {
    groups[g] = cube->axis_id(Dimension::kGroup, g);
  }
  std::vector<std::optional<double>> column(groups.size());
  FAIRJOB_RETURN_IF_ERROR(eval(q, l, groups, &column));
  for (size_t g = 0; g < column.size(); ++g) {
    if (column[g].has_value()) {
      cube->Set(g, query_pos, location_pos, *column[g]);
    } else {
      cube->Clear(g, query_pos, location_pos);
    }
  }
  return Status::OK();
}

}  // namespace

Status RefreshMarketplaceColumn(const MarketplaceDataset& data,
                                const GroupSpace& space, MarketMeasure measure,
                                const MeasureOptions& options,
                                UnfairnessCube* cube, size_t query_pos,
                                size_t location_pos, size_t parallelism) {
  MarketplaceGroupMembership membership(data, space);
  return RefreshColumn(
      cube, query_pos, location_pos,
      [&](QueryId q, LocationId l, const std::vector<GroupId>& groups,
          std::vector<std::optional<double>>* column) {
        return EvaluateMarketplaceColumn(data, space, membership, measure,
                                         options, q, l, groups, column,
                                         parallelism);
      });
}

Status RefreshSearchColumn(const SearchDataset& data, const GroupSpace& space,
                           SearchMeasure measure,
                           const MeasureOptions& options, UnfairnessCube* cube,
                           size_t query_pos, size_t location_pos,
                           size_t parallelism) {
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  SearchGroupMembership membership(data, space);
  return RefreshColumn(
      cube, query_pos, location_pos,
      [&](QueryId q, LocationId l, const std::vector<GroupId>& groups,
          std::vector<std::optional<double>>* column) {
        return EvaluateSearchColumn(data, space, membership, measure, options,
                                    q, l, groups, column, parallelism);
      });
}

Result<CubeAxes> ResolveMarketplaceCubeAxes(const MarketplaceDataset& data,
                                            const GroupSpace& space,
                                            const CubeAxes& axes) {
  return ResolveAxes(axes, space.num_groups(), data.queries().size(),
                     data.locations().size());
}

Result<CubeAxes> ResolveSearchCubeAxes(const SearchDataset& data,
                                       const GroupSpace& space,
                                       const CubeAxes& axes) {
  return ResolveAxes(axes, space.num_groups(), data.queries().size(),
                     data.locations().size());
}

Status CubeMaterializeSink::Consume(size_t query_pos, size_t location_pos,
                                    const std::optional<double>* values,
                                    size_t num_groups) {
  if (num_groups != cube_->axis_size(Dimension::kGroup) ||
      query_pos >= cube_->axis_size(Dimension::kQuery) ||
      location_pos >= cube_->axis_size(Dimension::kLocation)) {
    return Status::InvalidArgument(
        "streamed column does not match the sink cube's axes");
  }
  for (size_t g = 0; g < num_groups; ++g) {
    if (values[g].has_value()) {
      cube_->Set(g, query_pos, location_pos, *values[g]);
    } else {
      cube_->Clear(g, query_pos, location_pos);
    }
  }
  return Status::OK();
}

namespace {

// Shared frame of the two sharded builders: shard loop + column fan-out;
// `eval` runs the family-specific column evaluation.
Status BuildCubeSharded(
    const CubeAxes& resolved, const ShardedBuildOptions& sharded,
    CubeColumnSink* sink, const char* family,
    const std::function<Status(QueryId, LocationId,
                               std::vector<std::optional<double>>*)>& eval) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  static Counter* const columns_streamed =
      metrics.counter("cube.sharded.columns_streamed");
  static Counter* const shards_built = metrics.counter("cube.sharded.shards");
  auto start = std::chrono::steady_clock::now();

  if (sink == nullptr) {
    return Status::InvalidArgument("sharded cube build needs a sink");
  }
  if (sharded.shard_columns == 0) {
    return Status::InvalidArgument("shard_columns must be at least 1");
  }
  size_t num_locations = resolved.locations.size();
  size_t total_columns = resolved.queries.size() * num_locations;
  for (size_t shard_start = 0; shard_start < total_columns;
       shard_start += sharded.shard_columns) {
    size_t shard_size =
        std::min(sharded.shard_columns, total_columns - shard_start);
    Status built = ParallelFor(
        shard_size, sharded.parallelism, [&](size_t offset) -> Status {
          size_t index = shard_start + offset;
          size_t q = index / num_locations;
          size_t l = index % num_locations;
          std::vector<std::optional<double>> column(resolved.groups.size());
          FAIRJOB_RETURN_IF_ERROR(
              eval(resolved.queries[q], resolved.locations[l], &column));
          FAIRJOB_RETURN_IF_ERROR(
              sink->Consume(q, l, column.data(), column.size()));
          columns_streamed->Add(1);
          return Status::OK();
        });
    FAIRJOB_RETURN_IF_ERROR(built);
    shards_built->Add(1);
  }
  RecordBuildSummary(family,
                     std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count(),
                     total_columns * resolved.groups.size());
  return Status::OK();
}

}  // namespace

namespace {

// Shared frame of the two delta builders: validate the column list against
// the resolved axes, then fan the listed columns out to the sink.
Status BuildCubeColumns(
    const CubeAxes& resolved, const std::vector<CubeColumnRef>& columns,
    size_t parallelism, CubeColumnSink* sink,
    const std::function<Status(QueryId, LocationId,
                               std::vector<std::optional<double>>*)>& eval) {
  if (sink == nullptr) {
    return Status::InvalidArgument("delta cube build needs a sink");
  }
  for (const CubeColumnRef& column : columns) {
    if (column.query_pos >= resolved.queries.size() ||
        column.location_pos >= resolved.locations.size()) {
      return Status::InvalidArgument("delta column position out of range");
    }
  }
  return ParallelFor(columns.size(), parallelism, [&](size_t i) -> Status {
    const CubeColumnRef& column = columns[i];
    std::vector<std::optional<double>> values(resolved.groups.size());
    FAIRJOB_RETURN_IF_ERROR(eval(resolved.queries[column.query_pos],
                                 resolved.locations[column.location_pos],
                                 &values));
    return sink->Consume(column.query_pos, column.location_pos, values.data(),
                         values.size());
  });
}

}  // namespace

Status BuildMarketplaceCubeColumns(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   const MarketplaceGroupMembership& membership,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const std::vector<CubeColumnRef>& columns,
                                   size_t parallelism, CubeColumnSink* sink) {
  TraceSpan span("BuildMarketplaceCubeColumns", "cube");
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveMarketplaceCubeAxes(data, space, axes));
  return BuildCubeColumns(
      resolved, columns, parallelism, sink,
      [&](QueryId q, LocationId l,
          std::vector<std::optional<double>>* column) {
        return EvaluateMarketplaceColumn(data, space, membership, measure,
                                         options, q, l, resolved.groups,
                                         column, /*parallelism=*/1);
      });
}

Status BuildMarketplaceCubeColumns(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const std::vector<CubeColumnRef>& columns,
                                   size_t parallelism, CubeColumnSink* sink) {
  MarketplaceGroupMembership membership(data, space);
  return BuildMarketplaceCubeColumns(data, space, membership, measure, options,
                                     axes, columns, parallelism, sink);
}

Status BuildSearchCubeColumns(const SearchDataset& data,
                              const GroupSpace& space, SearchMeasure measure,
                              const MeasureOptions& options,
                              const CubeAxes& axes,
                              const std::vector<CubeColumnRef>& columns,
                              size_t parallelism, CubeColumnSink* sink) {
  TraceSpan span("BuildSearchCubeColumns", "cube");
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveSearchCubeAxes(data, space, axes));
  SearchGroupMembership membership(data, space);
  return BuildCubeColumns(
      resolved, columns, parallelism, sink,
      [&](QueryId q, LocationId l,
          std::vector<std::optional<double>>* column) {
        return EvaluateSearchColumn(data, space, membership, measure, options,
                                    q, l, resolved.groups, column,
                                    /*parallelism=*/1);
      });
}

Status BuildMarketplaceCubeSharded(const MarketplaceDataset& data,
                                   const GroupSpace& space,
                                   MarketMeasure measure,
                                   const MeasureOptions& options,
                                   const CubeAxes& axes,
                                   const ShardedBuildOptions& sharded,
                                   CubeColumnSink* sink) {
  TraceSpan span("BuildMarketplaceCubeSharded", "cube");
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveMarketplaceCubeAxes(data, space, axes));
  MarketplaceGroupMembership membership(data, space);
  return BuildCubeSharded(
      resolved, sharded, sink, "market",
      [&](QueryId q, LocationId l,
          std::vector<std::optional<double>>* column) {
        return EvaluateMarketplaceColumn(data, space, membership, measure,
                                         options, q, l, resolved.groups,
                                         column, /*parallelism=*/1);
      });
}

Status BuildSearchCubeSharded(const SearchDataset& data,
                              const GroupSpace& space, SearchMeasure measure,
                              const MeasureOptions& options,
                              const CubeAxes& axes,
                              const ShardedBuildOptions& sharded,
                              CubeColumnSink* sink) {
  TraceSpan span("BuildSearchCubeSharded", "cube");
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  FAIRJOB_ASSIGN_OR_RETURN(CubeAxes resolved,
                           ResolveSearchCubeAxes(data, space, axes));
  SearchGroupMembership membership(data, space);
  return BuildCubeSharded(
      resolved, sharded, sink, "search",
      [&](QueryId q, LocationId l,
          std::vector<std::optional<double>>* column) {
        return EvaluateSearchColumn(data, space, membership, measure, options,
                                    q, l, resolved.groups, column,
                                    sharded.parallelism);
      });
}

Result<UnfairnessCube> BuildSearchCube(const SearchDataset& data,
                                       const GroupSpace& space,
                                       SearchMeasure measure,
                                       const MeasureOptions& options,
                                       const CubeAxes& axes,
                                       size_t parallelism) {
  TraceSpan span("BuildSearchCube", "cube");
  auto start = std::chrono::steady_clock::now();
  if (options.kendall_penalty < 0.0 || options.kendall_penalty > 1.0) {
    return Status::InvalidArgument("kendall_penalty must lie in [0, 1]");
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      CubeAxes resolved,
      ResolveAxes(axes, space.num_groups(), data.queries().size(),
                  data.locations().size()));
  FAIRJOB_ASSIGN_OR_RETURN(
      UnfairnessCube cube,
      UnfairnessCube::Make(resolved.groups, resolved.queries,
                           resolved.locations));

  // Group membership depends only on user demographics, never on the
  // (query, location) column, so the label matching is hoisted out of the
  // column loop and shared read-only across all column tasks.
  SearchGroupMembership membership(data, space);

  // Unlike the marketplace path, pairwise list distances dominate here, so
  // the within-cell rows are parallelized too (nested ParallelFor calls on
  // the shared pool): a few large (query, location) cells no longer
  // serialize a whole build.
  Status built = ParallelForPairs(
      resolved.queries.size(), resolved.locations.size(), parallelism,
      [&](size_t q, size_t l) -> Status {
        std::vector<std::optional<double>> column(resolved.groups.size());
        FAIRJOB_RETURN_IF_ERROR(EvaluateSearchColumn(
            data, space, membership, measure, options, resolved.queries[q],
            resolved.locations[l], resolved.groups, &column, parallelism));
        for (size_t g = 0; g < column.size(); ++g) {
          if (column[g].has_value()) cube.Set(g, q, l, *column[g]);
        }
        return Status::OK();
      });
  FAIRJOB_RETURN_IF_ERROR(built);
  RecordBuildSummary("search",
                     std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count(),
                     cube.num_cells());
  return cube;
}

}  // namespace fairjob
