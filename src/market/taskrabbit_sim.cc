#include "market/taskrabbit_sim.h"

#include <algorithm>
#include <cmath>

#include "crawl/labeling.h"

namespace fairjob {
namespace {

const char* const kCities[] = {
    // Paper-named, severity-calibrated cities (Tables 10–12, 15).
    "Birmingham, UK", "Oklahoma City, OK", "Bristol, UK", "Manchester, UK",
    "New Haven, CT", "Milwaukee, WI", "Memphis, TN", "Indianapolis, IN",
    "Nashville, TN", "Detroit, MI", "Charlotte, NC", "Norfolk, VA",
    "St. Louis, MO", "Salt Lake City, UT", "Chicago, IL", "San Francisco, CA",
    "Washington, DC", "Los Angeles, CA", "Boston, MA", "Atlanta, GA",
    "Houston, TX", "Orlando, FL", "Philadelphia, PA", "San Diego, CA",
    "San Francisco Bay Area, CA", "New York City, NY", "London, UK",
    // Filler cities to reach TaskRabbit's 56 supported markets.
    "Seattle, WA", "Portland, OR", "Austin, TX", "Dallas, TX", "Denver, CO",
    "Phoenix, AZ", "Miami, FL", "Tampa, FL", "Baltimore, MD", "Pittsburgh, PA",
    "Cleveland, OH", "Columbus, OH", "Cincinnati, OH", "Kansas City, MO",
    "Minneapolis, MN", "Sacramento, CA", "San Jose, CA", "Las Vegas, NV",
    "Raleigh, NC", "Richmond, VA", "Jacksonville, FL", "New Orleans, LA",
    "Louisville, KY", "Tucson, AZ", "Albuquerque, NM", "Omaha, NE",
    "Tulsa, OK", "Fresno, CA", "Oakland, CA",
};
constexpr size_t kNumCities = sizeof(kCities) / sizeof(kCities[0]);
constexpr size_t kNumCalibratedCities = 27;

struct CategorySpec {
  const char* category;
  const char* sub_jobs[12];
};

const CategorySpec kCategories[] = {
    {"Handyman",
     {"Hang Pictures", "Mount TV", "Fix Leaky Faucet", "Install Shelves",
      "Door Repair", "Drywall Patching", "Window Repair", "Caulking & Sealing",
      "Light Fixture Installation", "Smart Lock Installation", "Babyproofing",
      "Furniture Repair"}},
    {"Yard Work",
     {"Lawn Mowing", "Leaf Raking", "Hedge Trimming", "Garden Weeding",
      "Patio Painting", "Garage Cleaning", "Gutter Cleaning", "Snow Removal",
      "Planting & Landscaping", "Yard Cleanup", "Fence Painting",
      "Composting Setup"}},
    {"Event Staffing",
     {"Event Decorating", "Party Setup", "Event Cleanup", "Bartending Help",
      "Coat Check", "Ticket Scanning", "Catering Help",
      "Photo Booth Assistance", "Registration Desk", "Crowd Ushering",
      "AV Setup", "Event Teardown"}},
    {"General Cleaning",
     {"Back To Organized", "Organize & Declutter", "Organize Closet",
      "Deep Cleaning", "Move Out Cleaning", "Office Cleaning",
      "Private Cleaning", "Window Washing", "Carpet Cleaning",
      "Kitchen Cleaning", "Bathroom Cleaning", "Laundry Help"}},
    {"Moving",
     {"Full Service Move", "Loading Help", "Unloading Help",
      "Packing Services", "Unpacking Services", "Heavy Lifting",
      "Piano Moving", "Appliance Moving", "Storage Organization",
      "Truck Loading", "In-House Moving", "Donation Pickup"}},
    {"Delivery",
     {"Grocery Delivery", "Package Pickup", "Food Delivery",
      "Furniture Delivery", "Pharmacy Pickup", "Flower Delivery",
      "Laundry Pickup", "Document Courier", "Appliance Delivery",
      "Same Day Delivery", "Return Dropoff", "Gift Delivery"}},
    {"Furniture Assembly",
     {"Bed Assembly", "Desk Assembly", "Bookshelf Assembly",
      "Wardrobe Assembly", "Dresser Assembly", "Table Assembly",
      "Chair Assembly", "Sofa Assembly", "Crib Assembly",
      "Shelving Unit Assembly", "Outdoor Furniture Assembly",
      "Exercise Equipment Assembly"}},
    {"Run Errands",
     {"Wait In Line", "Dry Cleaning Dropoff", "Post Office Run",
      "Grocery Shopping", "Pet Supply Run", "Hardware Store Run",
      "Bank Errand", "Car Wash Run", "Library Return", "Prescription Pickup",
      "Shopping Assistant", "Personal Assistant Errands"}},
};

// (city, sub-job) pairs the paper's tables depend on; never excluded from
// the offering set.
bool IsProtectedPair(const std::string& city, const std::string& sub_job) {
  static const char* const kProtectedJobs[] = {
      "Lawn Mowing",        "Event Decorating", "Back To Organized",
      "Organize & Declutter", "Organize Closet",
  };
  for (const char* job : kProtectedJobs) {
    if (sub_job == job) return true;
  }
  // Calibrated cities keep their full offering sets so per-city aggregates
  // stay comparable.
  for (size_t i = 0; i < kNumCalibratedCities; ++i) {
    if (city == kCities[i]) return true;
  }
  return false;
}

}  // namespace

AttributeSchema TaskRabbitSchema() {
  AttributeSchema schema;
  // Registration order fixes display names: "Asian Female", as in the paper.
  Result<AttributeId> eth =
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"});
  Result<AttributeId> gender = schema.AddAttribute("gender", {"Male", "Female"});
  (void)eth;
  (void)gender;
  return schema;
}

std::vector<std::string> TaskRabbitCities() {
  return std::vector<std::string>(kCities, kCities + kNumCities);
}

std::vector<JobOffering> TaskRabbitOfferings() {
  std::vector<JobOffering> offerings;
  for (const CategorySpec& spec : kCategories) {
    for (const char* sub_job : spec.sub_jobs) {
      offerings.push_back(JobOffering{sub_job, spec.category});
    }
  }
  return offerings;
}

Result<std::unique_ptr<SimulatedMarketplace>> BuildTaskRabbitSite(
    const TaskRabbitConfig& config) {
  AttributeSchema schema = TaskRabbitSchema();
  FAIRJOB_ASSIGN_OR_RETURN(AttributeId eth_attr,
                           schema.FindAttribute("ethnicity"));
  FAIRJOB_ASSIGN_OR_RETURN(AttributeId gender_attr,
                           schema.FindAttribute("gender"));

  std::vector<std::string> cities = TaskRabbitCities();
  if (config.max_cities > 0 && cities.size() > config.max_cities) {
    cities.resize(config.max_cities);
  }

  std::vector<JobOffering> offerings;
  for (const CategorySpec& spec : kCategories) {
    size_t taken = 0;
    for (const char* sub_job : spec.sub_jobs) {
      if (config.max_subjobs_per_category > 0 &&
          taken >= config.max_subjobs_per_category) {
        break;
      }
      offerings.push_back(JobOffering{sub_job, spec.category});
      ++taken;
    }
  }

  // Give un-calibrated cities a deterministic severity spread so per-city
  // aggregates do not tie.
  MarketCalibration calibration = config.calibration;
  size_t filler_index = 0;
  for (const std::string& city : cities) {
    if (calibration.city_severity.count(city) == 0) {
      calibration.city_severity[city] =
          0.45 + 0.13 * (static_cast<double>(filler_index) / 28.0);
      ++filler_index;
    }
  }

  FAIRJOB_ASSIGN_OR_RETURN(ScoringModel scoring,
                           ScoringModel::Make(schema, std::move(calibration)));

  // Worker population: spread across cities round-robin. Demographics are
  // *stratified* per city (largest-remainder quotas over the 6 cells), so
  // every market has the same composition and per-city unfairness reflects
  // the injected severities rather than a composition lottery.
  Rng rng(config.seed);
  std::vector<SimWorker> workers;
  workers.reserve(config.num_workers);
  double asian_share = 1.0 - config.white_share - config.black_share;
  const double eth_shares[3] = {asian_share, config.black_share,
                                config.white_share};
  const double gender_shares[2] = {config.male_share, 1.0 - config.male_share};

  std::vector<size_t> city_pool_size(cities.size(), 0);
  for (size_t i = 0; i < config.num_workers; ++i) {
    ++city_pool_size[i % cities.size()];
  }
  // Per-city pools via largest-remainder apportionment over the 6 cells.
  // Both the demographics AND the base-quality draws are stratified: the
  // j-th member of a demographic cell gets the same base quality in every
  // city, so cross-city unfairness differences are driven by the injected
  // severities rather than by per-city quality lotteries of the (tiny)
  // minority cells, while the within-city quality spread stays wide.
  struct PoolWorker {
    Demographics demo;
    double base_quality;
  };
  std::vector<std::vector<PoolWorker>> city_pools(cities.size());
  for (size_t c = 0; c < cities.size(); ++c) {
    size_t n = city_pool_size[c];
    struct Cell {
      Demographics demo;
      uint64_t cell_key;
      double exact;
      size_t count;
    };
    std::vector<Cell> cells;
    size_t assigned = 0;
    for (ValueId e = 0; e < 3; ++e) {
      for (ValueId g = 0; g < 2; ++g) {
        Demographics d(schema.num_attributes(), 0);
        d[static_cast<size_t>(eth_attr)] = e;
        d[static_cast<size_t>(gender_attr)] = g;
        double exact = static_cast<double>(n) * eth_shares[e] *
                       gender_shares[g];
        size_t count = static_cast<size_t>(exact);
        assigned += count;
        cells.push_back(Cell{std::move(d),
                             static_cast<uint64_t>(e) * 2u +
                                 static_cast<uint64_t>(g),
                             exact, count});
      }
    }
    std::stable_sort(cells.begin(), cells.end(), [](const Cell& a,
                                                    const Cell& b) {
      return (a.exact - static_cast<double>(a.count)) >
             (b.exact - static_cast<double>(b.count));
    });
    for (size_t i = 0; assigned < n; ++i, ++assigned) {
      ++cells[i % cells.size()].count;
    }
    for (const Cell& cell : cells) {
      Rng quality_rng(config.seed ^
                      (0x5eedULL + cell.cell_key * 0x9e3779b97f4a7c15ULL));
      // Standardize the cell's quality sequence to mean 0.5 and the target
      // spread, so no demographic cell is systematically luckier than
      // another by construction — only the injected penalties differentiate
      // cells.
      std::vector<double> draws(cell.count);
      double mean = 0.0;
      for (double& d : draws) {
        d = quality_rng.NextGaussian(0.0, 1.0);
        mean += d;
      }
      if (cell.count > 0) mean /= static_cast<double>(cell.count);
      double var = 0.0;
      for (double d : draws) var += (d - mean) * (d - mean);
      double sd = cell.count > 1
                      ? std::sqrt(var / static_cast<double>(cell.count))
                      : 0.0;
      for (double d : draws) {
        double z = sd > 0.0 ? (d - mean) / sd : 0.0;
        double quality = std::clamp(
            0.5 + z * config.calibration.base_quality_stddev, 0.0, 1.0);
        city_pools[c].push_back(PoolWorker{cell.demo, quality});
      }
    }
    rng.Shuffle(city_pools[c]);
  }

  std::vector<size_t> city_cursor(cities.size(), 0);
  for (size_t i = 0; i < config.num_workers; ++i) {
    SimWorker w;
    w.name = "tasker_" + std::to_string(i);
    w.picture_ref = "pic_" + std::to_string(i);
    w.city_index = i % cities.size();
    if (config.stratified_population) {
      const PoolWorker& pool_worker =
          city_pools[w.city_index][city_cursor[w.city_index]++];
      w.demographics = pool_worker.demo;
      w.base_quality = pool_worker.base_quality;
    } else {
      // i.i.d. ablation path: composition and quality lotteries per city.
      Demographics d(schema.num_attributes(), 0);
      size_t eth = rng.NextCategorical(
          {eth_shares[0], eth_shares[1], eth_shares[2]});
      d[static_cast<size_t>(eth_attr)] = static_cast<ValueId>(eth);
      d[static_cast<size_t>(gender_attr)] =
          rng.NextBernoulli(config.male_share) ? 0 : 1;
      w.demographics = std::move(d);
      w.base_quality = std::clamp(
          rng.NextGaussian(0.5, config.calibration.base_quality_stddev), 0.0,
          1.0);
    }
    w.hourly_rate = std::clamp(rng.NextGaussian(35.0, 12.0), 12.0, 120.0);
    w.num_reviews = static_cast<int>(rng.NextBelow(200));
    workers.push_back(std::move(w));
  }

  // Exclude the excess (city, sub-job) pairs, scanning from the tail of the
  // cross product and skipping protected pairs.
  std::unordered_set<std::string> excluded;
  size_t total = cities.size() * offerings.size();
  if (total > config.target_query_count) {
    size_t to_exclude = total - config.target_query_count;
    for (size_t ci = cities.size(); ci-- > 0 && to_exclude > 0;) {
      for (size_t oi = offerings.size(); oi-- > 0 && to_exclude > 0;) {
        if (IsProtectedPair(cities[ci], offerings[oi].sub_job)) continue;
        excluded.insert(cities[ci] + "|" + offerings[oi].sub_job);
        --to_exclude;
      }
    }
  }

  SimulatedMarketplace::Config site_config;
  site_config.seed = config.seed;
  site_config.transient_failure_rate = config.transient_failure_rate;
  site_config.category_participation = config.category_participation;
  FAIRJOB_ASSIGN_OR_RETURN(
      SimulatedMarketplace site,
      SimulatedMarketplace::Make(std::move(schema), std::move(workers),
                                 std::move(cities), std::move(offerings),
                                 std::move(excluded), std::move(scoring),
                                 site_config));
  return std::make_unique<SimulatedMarketplace>(std::move(site));
}

Result<TaskRabbitDataset> BuildTaskRabbitDataset(const TaskRabbitConfig& config,
                                                 double label_error_rate) {
  FAIRJOB_ASSIGN_OR_RETURN(std::unique_ptr<SimulatedMarketplace> site,
                           BuildTaskRabbitSite(config));

  // Worker demographics: ground truth, or majority-voted noisy labels.
  std::vector<Demographics> demographics;
  demographics.reserve(site->num_workers());
  for (size_t i = 0; i < site->num_workers(); ++i) {
    demographics.push_back(site->worker(i).demographics);
  }
  if (label_error_rate > 0.0) {
    LabelingConfig label_config;
    label_config.error_rate = label_error_rate;
    Rng label_rng(config.seed ^ 0x1abe1u);
    FAIRJOB_ASSIGN_OR_RETURN(
        LabelingOutcome outcome,
        RunLabeling(site->schema(), demographics, label_config, &label_rng));
    demographics = std::move(outcome.labels);
  }

  TaskRabbitDataset out{MarketplaceDataset(site->schema()), {}, 0};
  MarketplaceDataset& ds = out.dataset;
  std::vector<WorkerId> worker_ids(site->num_workers());
  for (size_t i = 0; i < site->num_workers(); ++i) {
    FAIRJOB_ASSIGN_OR_RETURN(
        worker_ids[i], ds.AddWorker(site->worker(i).name, demographics[i]));
  }

  for (const JobOffering& offering : site->offerings()) {
    out.subjobs_by_category[offering.category].push_back(offering.sub_job);
  }

  constexpr size_t kResultCap = 50;  // the paper's 50-tasker query cap
  for (const std::string& city : site->Cities()) {
    for (const std::string& job : site->JobsIn(city)) {
      FAIRJOB_ASSIGN_OR_RETURN(std::vector<size_t> ranking,
                               site->RankFor(job, city));
      MarketRanking market_ranking;
      size_t n = std::min(ranking.size(), kResultCap);
      market_ranking.workers.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        market_ranking.workers.push_back(worker_ids[ranking[i]]);
      }
      if (market_ranking.workers.empty()) continue;
      QueryId q = ds.queries().GetOrAdd(job);
      LocationId l = ds.locations().GetOrAdd(city);
      FAIRJOB_RETURN_IF_ERROR(ds.SetRanking(q, l, std::move(market_ranking)));
      ++out.queries_offered;
    }
  }
  return out;
}

}  // namespace fairjob
