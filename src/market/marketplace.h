#ifndef FAIRJOB_MARKET_MARKETPLACE_H_
#define FAIRJOB_MARKET_MARKETPLACE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/attribute_schema.h"
#include "crawl/crawler.h"
#include "market/scoring.h"

namespace fairjob {

// One simulated tasker.
struct SimWorker {
  std::string name;
  Demographics demographics;  // ground truth ("the profile picture")
  double base_quality = 0.5;
  std::string picture_ref;
  double hourly_rate = 30.0;
  int num_reviews = 0;
  size_t city_index = 0;
};

// A job offering: the sub-job string users query for and its category
// (Table 9 rows are categories; Tables 13–15 rows are sub-jobs).
struct JobOffering {
  std::string sub_job;
  std::string category;
};

// The TaskRabbit-like site: city-local worker pools ranked per (sub-job,
// city) by the biased latent score of the ScoringModel. Rankings are
// deterministic per (seed, sub-job, city) and cached, so repeated crawls and
// pagination see a consistent order. Implements the crawler's
// MarketplaceSite interface and can also emit datasets directly.
class SimulatedMarketplace : public MarketplaceSite {
 public:
  struct Config {
    uint64_t seed = 42;
    // Probability that a FetchPage / FetchProfile attempt fails with a
    // retryable IOError (exercises the crawler's backoff path).
    double transient_failure_rate = 0.0;
    // Probability (deterministic per worker × category) that a worker offers
    // jobs in a category at all. Below 1.0, result lists shrink under the
    // crawler's 50-result cap, keeping the bottom of each ranking
    // observable.
    double category_participation = 1.0;
  };

  // `excluded` holds "city|sub_job" keys that are not offered (the paper's
  // crawl yielded 5,361 of the possible city × job combinations).
  // Errors: InvalidArgument on empty cities/offerings or workers referencing
  // unknown cities.
  static Result<SimulatedMarketplace> Make(
      AttributeSchema schema, std::vector<SimWorker> workers,
      std::vector<std::string> cities, std::vector<JobOffering> offerings,
      std::unordered_set<std::string> excluded, ScoringModel scoring,
      Config config);

  // --- MarketplaceSite -------------------------------------------------------
  std::vector<std::string> Cities() const override;
  std::vector<std::string> JobsIn(const std::string& city) const override;
  Result<ResultPage> FetchPage(const std::string& job, const std::string& city,
                               size_t page, size_t page_size) override;
  Result<RawProfile> FetchProfile(const std::string& worker_name) override;

  // --- direct access (bypassing the crawl, for benches/tests) ---------------
  const AttributeSchema& schema() const { return schema_; }
  size_t num_workers() const { return workers_.size(); }
  const SimWorker& worker(size_t i) const { return workers_[i]; }

  // Ground truth demographics; stands in for "inspecting the profile
  // picture". Errors: NotFound.
  Result<Demographics> TrueDemographics(const std::string& worker_name) const;
  Result<Demographics> TruthByPicture(const std::string& picture_ref) const;

  // The full biased ranking for (sub-job, city): worker indices best-first.
  // Errors: NotFound when the pair is not offered.
  Result<std::vector<size_t>> RankFor(const std::string& job,
                                      const std::string& city);

  // Advances the marketplace to a new epoch: per-ranking noise is redrawn
  // (workers' relative standing shifts modestly) while the population, the
  // injected bias and category participation stay fixed. Rankings remain
  // deterministic per (seed, epoch, job, city) — the substrate for
  // monitoring audits across repeated crawls.
  void SetEpoch(uint32_t epoch);
  uint32_t epoch() const { return epoch_; }

  const std::vector<JobOffering>& offerings() const { return offerings_; }
  bool IsOffered(const std::string& job, const std::string& city) const;

  size_t num_queries_offered() const;

 private:
  SimulatedMarketplace(AttributeSchema schema, ScoringModel scoring,
                       Config config)
      : schema_(std::move(schema)),
        scoring_(std::move(scoring)),
        config_(config),
        failure_rng_(config.seed ^ 0xfa11fa11u) {}

  AttributeSchema schema_;
  ScoringModel scoring_;
  Config config_;
  Rng failure_rng_;
  uint32_t epoch_ = 0;

  std::vector<SimWorker> workers_;
  std::unordered_map<std::string, size_t> worker_by_name_;
  std::unordered_map<std::string, size_t> worker_by_picture_;
  std::vector<std::string> cities_;
  std::unordered_map<std::string, size_t> city_index_;
  std::vector<std::vector<size_t>> workers_in_city_;
  std::vector<JobOffering> offerings_;
  std::unordered_map<std::string, size_t> offering_by_subjob_;
  std::unordered_set<std::string> excluded_;

  std::unordered_map<std::string, std::vector<size_t>> ranking_cache_;
};

}  // namespace fairjob

#endif  // FAIRJOB_MARKET_MARKETPLACE_H_
