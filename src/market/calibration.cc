#include "market/calibration.h"

namespace fairjob {

MarketCalibration MarketCalibration::PaperDefaults() {
  MarketCalibration c;

  // Cell penalty = gender + ethnicity component. Targets Table 8's ordering:
  // Asian Female > Asian Male > Black Female > Asian > Black Male >
  // White Female > Black > Male ≈ Female > White > White Male.
  c.gender_penalty = {{"Male", 0.05}, {"Female", 0.22}};
  c.ethnicity_penalty = {{"Asian", 0.48}, {"Black", 0.28}, {"White", 0.06}};

  // Table 10 (least fair) and Table 11 (fairest) locations.
  c.city_severity = {
      {"Birmingham, UK", 1.00},    {"Oklahoma City, OK", 0.97},
      {"Bristol, UK", 0.92},       {"Manchester, UK", 0.88},
      {"New Haven, CT", 0.84},     {"Milwaukee, WI", 0.82},
      {"Memphis, TN", 0.81},       {"Indianapolis, IN", 0.80},
      {"Nashville, TN", 0.79},     {"Detroit, MI", 0.78},
      {"Charlotte, NC", 0.76},     {"Norfolk, VA", 0.74},
      {"St. Louis, MO", 0.72},     {"Salt Lake City, UT", 0.71},
      {"Chicago, IL", 0.10},       {"San Francisco, CA", 0.14},
      {"Washington, DC", 0.18},    {"Los Angeles, CA", 0.21},
      {"Boston, MA", 0.24},        {"Atlanta, GA", 0.28},
      {"Houston, TX", 0.31},       {"Orlando, FL", 0.34},
      {"Philadelphia, PA", 0.37},  {"San Diego, CA", 0.40},
      // Below Chicago: Table 15's caption has the Bay Area fairer than
      // Chicago for all jobs (the trend its listed sub-jobs invert).
      {"San Francisco Bay Area, CA", 0.04},
      {"New York City, NY", 0.55}, {"London, UK", 0.60},
  };

  // Table 9's job-type ordering: Handyman and Yard Work most unfair;
  // Furniture Assembly, Delivery and Run Errands fairest.
  c.category_severity = {
      {"Handyman", 0.98},          {"Yard Work", 0.96},
      {"Event Staffing", 0.78},    {"General Cleaning", 0.74},
      {"Moving", 0.66},            {"Furniture Assembly", 0.48},
      {"Run Errands", 0.42},       {"Delivery", 0.38},
  };

  // Table 12: locations where females are treated more fairly than males,
  // inverting the overall gender comparison.
  c.gender_flip_cities = {
      "Charlotte, NC",  "Chicago, IL",
      "Nashville, TN",  "Norfolk, VA",
      "San Francisco Bay Area, CA", "St. Louis, MO",
  };

  // Tables 13/14: for Whites, Lawn Mowing is *fairer* than Event Decorating,
  // inverting the population-wide comparison (Lawn Mowing less fair overall
  // through the Yard Work > Event Staffing category severities). Pushing
  // Whites into the middle of Lawn Mowing rankings shrinks the White
  // group's distance to both comparables there; a milder nudge for Blacks
  // lets the exposure variant flip there too (Table 14).
  c.ethnicity_job_adjust = {
      {"White|Lawn Mowing", +0.20},
      {"Black|Lawn Mowing", -0.08},
      {"Black|Event Decorating", +0.05},
  };

  // Table 15: San Francisco Bay Area is fairer than Chicago overall, but the
  // trend inverts for these General Cleaning sub-jobs.
  c.city_job_adjust = {
      {"San Francisco Bay Area, CA|Back To Organized", +0.45},
      {"San Francisco Bay Area, CA|Organize & Declutter", +0.45},
      {"San Francisco Bay Area, CA|Organize Closet", +0.45},
      {"Chicago, IL|Back To Organized", -0.05},
      {"Chicago, IL|Organize & Declutter", -0.05},
      {"Chicago, IL|Organize Closet", -0.05},
  };

  return c;
}

}  // namespace fairjob
