#include "market/marketplace.h"

#include <algorithm>

namespace fairjob {
namespace {

// Stable 64-bit string hash (FNV-1a) for per-(job, city) ranking seeds.
uint64_t HashKey(uint64_t seed, const std::string& a, const std::string& b) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
  };
  mix(a);
  mix(b);
  return h;
}

std::string PairKey(const std::string& city, const std::string& job) {
  return city + "|" + job;
}

}  // namespace

Result<SimulatedMarketplace> SimulatedMarketplace::Make(
    AttributeSchema schema, std::vector<SimWorker> workers,
    std::vector<std::string> cities, std::vector<JobOffering> offerings,
    std::unordered_set<std::string> excluded, ScoringModel scoring,
    Config config) {
  if (cities.empty()) return Status::InvalidArgument("no cities");
  if (offerings.empty()) return Status::InvalidArgument("no job offerings");

  SimulatedMarketplace site(std::move(schema), std::move(scoring), config);
  site.cities_ = std::move(cities);
  for (size_t i = 0; i < site.cities_.size(); ++i) {
    site.city_index_.emplace(site.cities_[i], i);
  }
  site.workers_in_city_.resize(site.cities_.size());
  site.workers_ = std::move(workers);
  for (size_t i = 0; i < site.workers_.size(); ++i) {
    const SimWorker& w = site.workers_[i];
    if (w.city_index >= site.cities_.size()) {
      return Status::InvalidArgument("worker '" + w.name +
                                     "' references an unknown city");
    }
    if (!site.schema_.IsValidDemographics(w.demographics)) {
      return Status::InvalidArgument("worker '" + w.name +
                                     "' has invalid demographics");
    }
    if (!site.worker_by_name_.emplace(w.name, i).second) {
      return Status::InvalidArgument("duplicate worker name '" + w.name + "'");
    }
    site.worker_by_picture_.emplace(w.picture_ref, i);
    site.workers_in_city_[w.city_index].push_back(i);
  }
  site.offerings_ = std::move(offerings);
  for (size_t i = 0; i < site.offerings_.size(); ++i) {
    if (!site.offering_by_subjob_.emplace(site.offerings_[i].sub_job, i)
             .second) {
      return Status::InvalidArgument("duplicate sub-job '" +
                                     site.offerings_[i].sub_job + "'");
    }
  }
  site.excluded_ = std::move(excluded);
  return site;
}

std::vector<std::string> SimulatedMarketplace::Cities() const {
  return cities_;
}

bool SimulatedMarketplace::IsOffered(const std::string& job,
                                     const std::string& city) const {
  return city_index_.count(city) > 0 && offering_by_subjob_.count(job) > 0 &&
         excluded_.count(PairKey(city, job)) == 0;
}

size_t SimulatedMarketplace::num_queries_offered() const {
  return cities_.size() * offerings_.size() - excluded_.size();
}

std::vector<std::string> SimulatedMarketplace::JobsIn(
    const std::string& city) const {
  std::vector<std::string> jobs;
  if (city_index_.count(city) == 0) return jobs;
  jobs.reserve(offerings_.size());
  for (const JobOffering& offering : offerings_) {
    if (excluded_.count(PairKey(city, offering.sub_job)) == 0) {
      jobs.push_back(offering.sub_job);
    }
  }
  return jobs;
}

Result<std::vector<size_t>> SimulatedMarketplace::RankFor(
    const std::string& job, const std::string& city) {
  if (!IsOffered(job, city)) {
    return Status::NotFound("'" + job + "' is not offered in '" + city + "'");
  }
  std::string key = PairKey(city, job);
  auto cached = ranking_cache_.find(key);
  if (cached != ranking_cache_.end()) return cached->second;

  const JobOffering& offering =
      offerings_[offering_by_subjob_.at(job)];
  size_t city_idx = city_index_.at(city);
  Rng rng(HashKey(config_.seed + 0x9e3779b97f4a7c15ULL * epoch_, job, city));

  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(workers_in_city_[city_idx].size());
  for (size_t widx : workers_in_city_[city_idx]) {
    const SimWorker& w = workers_[widx];
    if (config_.category_participation < 1.0) {
      // Stable per (worker, category): a tasker either offers a category or
      // does not, across every sub-job and repeated crawl.
      Rng participation(HashKey(config_.seed ^ 0x9a27ULL, w.name,
                                offering.category));
      if (!participation.NextBernoulli(config_.category_participation)) {
        continue;
      }
    }
    double score = scoring_.Score(w.base_quality, offering.sub_job,
                                  offering.category, city, w.demographics,
                                  &rng);
    scored.emplace_back(score, widx);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<size_t> ranking;
  ranking.reserve(scored.size());
  for (const auto& [score, widx] : scored) ranking.push_back(widx);
  auto [it, inserted] = ranking_cache_.emplace(key, std::move(ranking));
  (void)inserted;
  return it->second;
}

void SimulatedMarketplace::SetEpoch(uint32_t epoch) {
  if (epoch == epoch_) return;
  epoch_ = epoch;
  ranking_cache_.clear();
}

Result<ResultPage> SimulatedMarketplace::FetchPage(const std::string& job,
                                                   const std::string& city,
                                                   size_t page,
                                                   size_t page_size) {
  if (page_size == 0) return Status::InvalidArgument("page_size must be > 0");
  if (failure_rng_.NextBernoulli(config_.transient_failure_rate)) {
    return Status::IOError("simulated transient failure (rate limited)");
  }
  FAIRJOB_ASSIGN_OR_RETURN(std::vector<size_t> ranking, RankFor(job, city));
  ResultPage out;
  size_t begin = page * page_size;
  size_t end = std::min(ranking.size(), begin + page_size);
  for (size_t i = begin; i < end; ++i) {
    out.worker_names.push_back(workers_[ranking[i]].name);
  }
  out.has_more = end < ranking.size();
  return out;
}

Result<RawProfile> SimulatedMarketplace::FetchProfile(
    const std::string& worker_name) {
  if (failure_rng_.NextBernoulli(config_.transient_failure_rate)) {
    return Status::IOError("simulated transient failure (rate limited)");
  }
  auto it = worker_by_name_.find(worker_name);
  if (it == worker_by_name_.end()) {
    return Status::NotFound("no worker '" + worker_name + "'");
  }
  const SimWorker& w = workers_[it->second];
  RawProfile profile;
  profile.worker_name = w.name;
  profile.picture_ref = w.picture_ref;
  profile.hourly_rate = w.hourly_rate;
  profile.num_reviews = w.num_reviews;
  profile.badges = w.num_reviews > 50 ? "elite" : "";
  return profile;
}

Result<Demographics> SimulatedMarketplace::TrueDemographics(
    const std::string& worker_name) const {
  auto it = worker_by_name_.find(worker_name);
  if (it == worker_by_name_.end()) {
    return Status::NotFound("no worker '" + worker_name + "'");
  }
  return workers_[it->second].demographics;
}

Result<Demographics> SimulatedMarketplace::TruthByPicture(
    const std::string& picture_ref) const {
  auto it = worker_by_picture_.find(picture_ref);
  if (it == worker_by_picture_.end()) {
    return Status::NotFound("no picture '" + picture_ref + "'");
  }
  return workers_[it->second].demographics;
}

}  // namespace fairjob
