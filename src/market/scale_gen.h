#ifndef FAIRJOB_MARKET_SCALE_GEN_H_
#define FAIRJOB_MARKET_SCALE_GEN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/quantification.h"

namespace fairjob {

// Deterministic million-user-scale workload generator behind bench_scale:
// one seed reproduces the exact population, rankings, observations and
// request stream, so runs are comparable across machines and commits.
// Everything is generated incrementally into the destination dataset —
// no intermediate tables proportional to workers × columns — so generator
// peak memory is the dataset itself.

// Three protected attributes sized for an intersectional-group axis of
// production shape: ethnicity{5} × gender{3} × age{4} enumerate to
// (5+1)·(3+1)·(4+1) − 1 = 119 groups (every non-empty partial assignment).
Result<AttributeSchema> MakeScaleSchema();

struct ScaleSpec {
  uint64_t seed = 1;
  // Marketplace population and axes.
  size_t num_workers = 1'000'000;
  size_t num_queries = 10'000;
  size_t num_locations = 50;
  // Observed (query, location) columns. Query traffic is Zipf-distributed:
  // the rank-r query draws weight (r+1)^-zipf_exponent, so a handful of
  // head queries dominate — the shape real marketplaces show.
  size_t num_ranked_columns = 20'000;
  double zipf_exponent = 1.0;
  // Result-page length per observed column, uniform in [min, max].
  size_t min_ranking_length = 20;
  size_t max_ranking_length = 120;
};

// TaskRabbit-at-scale: registers num_workers workers ("w0", "w1", ...) with
// skewed demographic draws, num_queries/num_locations vocabularies, and one
// scored ranking per sampled column. Errors: InvalidArgument on a spec that
// cannot be satisfied (no workers/queries/locations, min > max ranking
// length, ranking longer than the population).
Result<MarketplaceDataset> GenerateScaleMarketplace(const ScaleSpec& spec);

struct SearchScaleSpec {
  uint64_t seed = 1;
  size_t num_users = 512;
  size_t num_queries = 64;
  size_t num_locations = 8;
  size_t num_observed_columns = 96;
  // Lists per observed column (the O(n²) pair count per cell).
  size_t observations_per_column = 48;
  // Documents sampled per column; with list_length ≥ universe/64 the
  // per-cell universe is dense enough that the Jaccard kernel takes the
  // bitmap-popcount path (the SIMD sweep bench_scale gates on).
  size_t document_universe = 2048;
  size_t list_length = 96;
  // Fraction of users shown one of num_shared_variants canonical result
  // lists verbatim (platforms serve few distinct pages); exercises the
  // list-batch arena's content deduplication. The rest see per-user
  // perturbations of a variant.
  double shared_list_fraction = 0.5;
  size_t num_shared_variants = 8;
};

// Google-style search study at SIMD-relevant cell shapes. Errors:
// InvalidArgument on an unsatisfiable spec (empty axes, list_length >
// document_universe, observations_per_column > num_users, ...).
Result<SearchDataset> GenerateScaleSearch(const SearchScaleSpec& spec);

struct ServeLoadSpec {
  uint64_t seed = 1;
  size_t num_requests = 10'000;
  // Distinct request shapes; requests are drawn from them Zipf-weighted, so
  // the stream has the repeat structure an answer cache is built for.
  size_t distinct_patterns = 256;
  double zipf_exponent = 1.0;
};

// Quantification request stream over a cube of the given axis sizes: varies
// target dimension, k, direction and axis restrictions per pattern.
// Requires all axis sizes ≥ 1 (returns an empty stream otherwise).
std::vector<QuantificationRequest> GenerateServeRequests(
    const ServeLoadSpec& spec, size_t num_groups, size_t num_queries,
    size_t num_locations);

struct ArrivalSpec {
  uint64_t seed = 1;
  // Mean offered rate of the open-loop stream.
  double target_qps = 1000.0;
  double duration_seconds = 1.0;
};

// Poisson arrival schedule for the open-loop load harness (serve/load_gen.h):
// i.i.d. exponential inter-arrival gaps with mean 1/target_qps, accumulated
// into sorted absolute offsets (microseconds from stream start) and truncated
// at the duration. Deterministic per seed; the expected length is
// target_qps × duration_seconds. Returns empty if either rate or duration is
// non-positive.
std::vector<int64_t> GenerateArrivalTimesMicros(const ArrivalSpec& spec);

}  // namespace fairjob

#endif  // FAIRJOB_MARKET_SCALE_GEN_H_
