#ifndef FAIRJOB_MARKET_SCORING_H_
#define FAIRJOB_MARKET_SCORING_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/attribute_schema.h"
#include "market/calibration.h"

namespace fairjob {

// Resolved, id-indexed view of a MarketCalibration against a concrete
// schema: turns name-keyed penalty maps into ValueId-indexed vectors so the
// per-worker scoring path is allocation-free.
class ScoringModel {
 public:
  // Errors: NotFound when the schema lacks a "gender" or "ethnicity"
  // attribute or the calibration names values the schema does not define.
  static Result<ScoringModel> Make(const AttributeSchema& schema,
                                   MarketCalibration calibration);

  const MarketCalibration& calibration() const { return calibration_; }

  // penalty(gender, ethnicity) for a worker, honouring the gender flip of
  // `city`.
  double CellPenalty(const Demographics& demographics,
                     const std::string& city) const;

  // severity(job, city) = city · category + (city, sub-job) interaction
  // adjustments, clamped to [0, 2].
  double Severity(const std::string& sub_job, const std::string& category,
                  const std::string& city,
                  const Demographics& demographics) const;

  // Direct score displacement for (ethnicity, sub-job) interactions, scaled
  // by the city severity (see MarketCalibration::ethnicity_job_adjust).
  double DirectAdjust(const std::string& sub_job, const std::string& city,
                      const Demographics& demographics) const;

  // Latent ranking score: base − severity · penalty + noise, clamped to
  // [0, 1]. Draws one Gaussian from `rng`.
  double Score(double base_quality, const std::string& sub_job,
               const std::string& category, const std::string& city,
               const Demographics& demographics, Rng* rng) const;

 private:
  ScoringModel(MarketCalibration calibration) : calibration_(std::move(calibration)) {}

  MarketCalibration calibration_;
  AttributeId gender_attr_ = 0;
  AttributeId ethnicity_attr_ = 0;
  std::vector<double> gender_penalty_by_id_;
  std::vector<double> ethnicity_penalty_by_id_;
  std::vector<std::string> ethnicity_names_;  // by ValueId, for adjust keys
};

}  // namespace fairjob

#endif  // FAIRJOB_MARKET_SCORING_H_
