#include "market/scoring.h"

#include <algorithm>

namespace fairjob {
namespace {

double LookupOr(const std::unordered_map<std::string, double>& map,
                const std::string& key, double fallback) {
  auto it = map.find(key);
  return it == map.end() ? fallback : it->second;
}

}  // namespace

Result<ScoringModel> ScoringModel::Make(const AttributeSchema& schema,
                                        MarketCalibration calibration) {
  ScoringModel model(std::move(calibration));
  FAIRJOB_ASSIGN_OR_RETURN(model.gender_attr_, schema.FindAttribute("gender"));
  FAIRJOB_ASSIGN_OR_RETURN(model.ethnicity_attr_,
                           schema.FindAttribute("ethnicity"));

  size_t n_gender = schema.num_values(model.gender_attr_);
  model.gender_penalty_by_id_.assign(n_gender, 0.0);
  for (size_t v = 0; v < n_gender; ++v) {
    const std::string& name =
        schema.value_name(model.gender_attr_, static_cast<ValueId>(v));
    auto it = model.calibration_.gender_penalty.find(name);
    if (it == model.calibration_.gender_penalty.end()) {
      return Status::NotFound("calibration has no gender penalty for '" +
                              name + "'");
    }
    model.gender_penalty_by_id_[v] = it->second;
  }

  size_t n_eth = schema.num_values(model.ethnicity_attr_);
  model.ethnicity_penalty_by_id_.assign(n_eth, 0.0);
  model.ethnicity_names_.resize(n_eth);
  for (size_t v = 0; v < n_eth; ++v) {
    const std::string& name =
        schema.value_name(model.ethnicity_attr_, static_cast<ValueId>(v));
    auto it = model.calibration_.ethnicity_penalty.find(name);
    if (it == model.calibration_.ethnicity_penalty.end()) {
      return Status::NotFound("calibration has no ethnicity penalty for '" +
                              name + "'");
    }
    model.ethnicity_penalty_by_id_[v] = it->second;
    model.ethnicity_names_[v] = name;
  }
  return model;
}

double ScoringModel::CellPenalty(const Demographics& demographics,
                                 const std::string& city) const {
  size_t g = static_cast<size_t>(demographics[static_cast<size_t>(gender_attr_)]);
  size_t e =
      static_cast<size_t>(demographics[static_cast<size_t>(ethnicity_attr_)]);
  double gender = gender_penalty_by_id_[g];
  if (calibration_.gender_flip_cities.count(city) > 0) {
    // Swap this worker's gender component with the *other* gender's average
    // component; for a binary domain this is exactly the swap.
    double total = 0.0;
    for (double p : gender_penalty_by_id_) total += p;
    gender = (total - gender) /
             static_cast<double>(gender_penalty_by_id_.size() - 1);
  }
  return gender + ethnicity_penalty_by_id_[e];
}

double ScoringModel::Severity(const std::string& sub_job,
                              const std::string& category,
                              const std::string& city,
                              const Demographics& demographics) const {
  (void)demographics;
  double sev = LookupOr(calibration_.city_severity, city,
                        calibration_.default_city_severity) *
               LookupOr(calibration_.category_severity, category,
                        calibration_.default_category_severity);
  sev += LookupOr(calibration_.city_job_adjust, city + "|" + sub_job, 0.0);
  return std::clamp(sev, 0.0, 2.0);
}

double ScoringModel::DirectAdjust(const std::string& sub_job,
                                  const std::string& city,
                                  const Demographics& demographics) const {
  size_t e =
      static_cast<size_t>(demographics[static_cast<size_t>(ethnicity_attr_)]);
  double adjust = LookupOr(calibration_.ethnicity_job_adjust,
                           ethnicity_names_[e] + "|" + sub_job, 0.0);
  return adjust * LookupOr(calibration_.city_severity, city,
                           calibration_.default_city_severity);
}

double ScoringModel::Score(double base_quality, const std::string& sub_job,
                           const std::string& category, const std::string& city,
                           const Demographics& demographics, Rng* rng) const {
  size_t e =
      static_cast<size_t>(demographics[static_cast<size_t>(ethnicity_attr_)]);
  double severity = Severity(sub_job, category, city, demographics);
  double penalty = ethnicity_penalty_by_id_[e] * severity;

  // Gender component with its own city-severity floor (see calibration.h).
  size_t g =
      static_cast<size_t>(demographics[static_cast<size_t>(gender_attr_)]);
  double gender = gender_penalty_by_id_[g];
  if (calibration_.gender_flip_cities.count(city) > 0) {
    double total = 0.0;
    for (double p : gender_penalty_by_id_) total += p;
    gender = (total - gender) /
             static_cast<double>(gender_penalty_by_id_.size() - 1);
  }
  double city_sev = LookupOr(calibration_.city_severity, city,
                             calibration_.default_city_severity);
  double gender_city_sev =
      std::max(city_sev, calibration_.gender_city_severity_floor);
  double cat_sev = LookupOr(calibration_.category_severity, category,
                            calibration_.default_category_severity);
  penalty += gender * std::clamp(gender_city_sev * cat_sev, 0.0, 2.0);

  penalty += DirectAdjust(sub_job, city, demographics);
  double noise = rng->NextGaussian(0.0, calibration_.noise_stddev);
  return std::clamp(base_quality - penalty + noise, 0.0, 1.0);
}

}  // namespace fairjob
