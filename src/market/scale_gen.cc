#include "market/scale_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/rng.h"

namespace fairjob {
namespace {

// O(log n) Zipf draws via a cumulative table + binary search (NextCategorical
// is a linear scan — too slow for 10k-wide axes × 20k draws).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent) : cumulative_(n) {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cumulative_[r] = total;
    }
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble() * cumulative_.back();
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    size_t index = static_cast<size_t>(it - cumulative_.begin());
    return std::min(index, cumulative_.size() - 1);
  }

 private:
  std::vector<double> cumulative_;
};

// Skewed (not uniform) per-attribute value draws, so intersectional group
// sizes span orders of magnitude like a real population's.
ValueId DrawValue(Rng& rng, const std::vector<double>& weights) {
  return static_cast<ValueId>(rng.NextCategorical(weights));
}

Demographics DrawDemographics(Rng& rng) {
  static const std::vector<double> ethnicity = {0.12, 0.15, 0.18, 0.45, 0.10};
  static const std::vector<double> gender = {0.48, 0.48, 0.04};
  static const std::vector<double> age = {0.30, 0.35, 0.22, 0.13};
  return {DrawValue(rng, ethnicity), DrawValue(rng, gender),
          DrawValue(rng, age)};
}

// Samples `count` distinct values from [0, n) (count ≪ n in every caller;
// rejection is cheap).
std::vector<int32_t> SampleDistinct(Rng& rng, size_t n, size_t count,
                                    std::unordered_set<int32_t>* scratch) {
  scratch->clear();
  std::vector<int32_t> out;
  out.reserve(count);
  while (out.size() < count) {
    int32_t v = static_cast<int32_t>(rng.NextBelow(static_cast<uint32_t>(n)));
    if (scratch->insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<AttributeSchema> MakeScaleSchema() {
  AttributeSchema schema;
  FAIRJOB_RETURN_IF_ERROR(
      schema
          .AddAttribute("ethnicity",
                        {"asian", "black", "hispanic", "white", "other"})
          .status());
  FAIRJOB_RETURN_IF_ERROR(
      schema.AddAttribute("gender", {"female", "male", "nonbinary"})
          .status());
  FAIRJOB_RETURN_IF_ERROR(
      schema.AddAttribute("age", {"18-29", "30-44", "45-59", "60plus"})
          .status());
  return schema;
}

Result<MarketplaceDataset> GenerateScaleMarketplace(const ScaleSpec& spec) {
  if (spec.num_workers == 0 || spec.num_queries == 0 ||
      spec.num_locations == 0) {
    return Status::InvalidArgument(
        "scale spec needs workers, queries and locations");
  }
  if (spec.min_ranking_length == 0 ||
      spec.min_ranking_length > spec.max_ranking_length) {
    return Status::InvalidArgument(
        "scale spec needs 0 < min_ranking_length <= max_ranking_length");
  }
  if (spec.max_ranking_length > spec.num_workers) {
    return Status::InvalidArgument(
        "scale spec ranks more workers per page than exist");
  }

  FAIRJOB_ASSIGN_OR_RETURN(AttributeSchema schema, MakeScaleSchema());
  MarketplaceDataset data(std::move(schema));

  Rng rng(spec.seed);
  Rng worker_rng = rng.Fork();
  Rng column_rng = rng.Fork();
  Rng page_rng = rng.Fork();

  // Population. Names are the dense index ("w123") — the axes stay
  // addressable without a side table.
  std::string name;
  for (size_t i = 0; i < spec.num_workers; ++i) {
    name = "w" + std::to_string(i);
    FAIRJOB_RETURN_IF_ERROR(
        data.AddWorker(name, DrawDemographics(worker_rng)).status());
  }
  for (size_t i = 0; i < spec.num_queries; ++i) {
    data.queries().GetOrAdd("q" + std::to_string(i));
  }
  for (size_t i = 0; i < spec.num_locations; ++i) {
    data.locations().GetOrAdd("city" + std::to_string(i));
  }

  // Observed columns: Zipf-weighted query choice × uniform location,
  // deduplicated; saturates early when the requested column count nears the
  // full grid, so cap the draw attempts.
  ZipfSampler query_traffic(spec.num_queries, spec.zipf_exponent);
  std::unordered_set<uint64_t> seen_columns;
  std::unordered_set<int32_t> scratch;
  size_t target_columns = std::min(
      spec.num_ranked_columns, spec.num_queries * spec.num_locations);
  size_t attempts = 0;
  size_t max_attempts = 20 * target_columns + 1000;
  size_t span = spec.max_ranking_length - spec.min_ranking_length + 1;
  while (seen_columns.size() < target_columns && attempts < max_attempts) {
    ++attempts;
    QueryId q = static_cast<QueryId>(query_traffic.Sample(column_rng));
    LocationId l = static_cast<LocationId>(
        column_rng.NextBelow(static_cast<uint32_t>(spec.num_locations)));
    uint64_t key = static_cast<uint64_t>(q) << 32 | static_cast<uint32_t>(l);
    if (!seen_columns.insert(key).second) continue;

    size_t len = spec.min_ranking_length +
                 page_rng.NextBelow(static_cast<uint32_t>(span));
    MarketRanking ranking;
    ranking.workers =
        SampleDistinct(page_rng, spec.num_workers, len, &scratch);
    ranking.scores.reserve(len);
    // Scores best-first: a decaying base with deterministic jitter, kept
    // strictly descending so exposure models see a realistic page.
    double score = 1.0;
    for (size_t r = 0; r < len; ++r) {
      score *= 0.9 + 0.09 * page_rng.NextDouble();
      ranking.scores.push_back(score);
    }
    FAIRJOB_RETURN_IF_ERROR(data.SetRanking(q, l, std::move(ranking)));
  }
  return data;
}

Result<SearchDataset> GenerateScaleSearch(const SearchScaleSpec& spec) {
  if (spec.num_users == 0 || spec.num_queries == 0 ||
      spec.num_locations == 0) {
    return Status::InvalidArgument(
        "search scale spec needs users, queries and locations");
  }
  if (spec.list_length == 0 || spec.list_length > spec.document_universe) {
    return Status::InvalidArgument(
        "search scale spec needs 0 < list_length <= document_universe");
  }
  if (spec.observations_per_column > spec.num_users) {
    return Status::InvalidArgument(
        "search scale spec samples more users per column than exist");
  }
  if (spec.num_shared_variants == 0) {
    return Status::InvalidArgument(
        "search scale spec needs at least one shared variant");
  }

  FAIRJOB_ASSIGN_OR_RETURN(AttributeSchema schema, MakeScaleSchema());
  SearchDataset data(std::move(schema));

  Rng rng(spec.seed);
  Rng user_rng = rng.Fork();
  Rng column_rng = rng.Fork();
  Rng list_rng = rng.Fork();

  for (size_t i = 0; i < spec.num_users; ++i) {
    FAIRJOB_RETURN_IF_ERROR(
        data.AddUser("u" + std::to_string(i), DrawDemographics(user_rng))
            .status());
  }
  for (size_t i = 0; i < spec.num_queries; ++i) {
    data.queries().GetOrAdd("term" + std::to_string(i));
  }
  for (size_t i = 0; i < spec.num_locations; ++i) {
    data.locations().GetOrAdd("city" + std::to_string(i));
  }

  ZipfSampler query_traffic(spec.num_queries, 1.0);
  std::unordered_set<uint64_t> seen_columns;
  std::unordered_set<int32_t> scratch;
  size_t target_columns = std::min(
      spec.num_observed_columns, spec.num_queries * spec.num_locations);
  size_t attempts = 0;
  size_t max_attempts = 20 * target_columns + 1000;
  while (seen_columns.size() < target_columns && attempts < max_attempts) {
    ++attempts;
    QueryId q = static_cast<QueryId>(query_traffic.Sample(column_rng));
    LocationId l = static_cast<LocationId>(
        column_rng.NextBelow(static_cast<uint32_t>(spec.num_locations)));
    uint64_t key = static_cast<uint64_t>(q) << 32 | static_cast<uint32_t>(l);
    if (!seen_columns.insert(key).second) continue;

    // Canonical result-page variants for this column.
    std::vector<RankedList> variants(spec.num_shared_variants);
    for (RankedList& v : variants) {
      v = SampleDistinct(list_rng, spec.document_universe, spec.list_length,
                         &scratch);
    }

    std::vector<int32_t> users = SampleDistinct(
        list_rng, spec.num_users, spec.observations_per_column, &scratch);
    std::unordered_set<int32_t> members;
    for (int32_t user : users) {
      const RankedList& base = variants[list_rng.NextBelow(
          static_cast<uint32_t>(variants.size()))];
      SearchObservation obs;
      obs.user = user;
      if (list_rng.NextBernoulli(spec.shared_list_fraction)) {
        obs.results = base;  // verbatim — dedups onto one arena slot
      } else {
        // Personalized: the variant with a handful of position swaps and a
        // few substituted documents.
        obs.results = base;
        members.clear();
        members.insert(obs.results.begin(), obs.results.end());
        size_t swaps = 1 + list_rng.NextBelow(4);
        for (size_t s = 0; s < swaps; ++s) {
          size_t a = list_rng.NextBelow(
              static_cast<uint32_t>(obs.results.size()));
          size_t b = list_rng.NextBelow(
              static_cast<uint32_t>(obs.results.size()));
          std::swap(obs.results[a], obs.results[b]);
        }
        size_t substitutions = list_rng.NextBelow(4);
        for (size_t s = 0; s < substitutions; ++s) {
          int32_t doc = static_cast<int32_t>(list_rng.NextBelow(
              static_cast<uint32_t>(spec.document_universe)));
          if (!members.insert(doc).second) continue;  // already on the page
          size_t at = list_rng.NextBelow(
              static_cast<uint32_t>(obs.results.size()));
          members.erase(obs.results[at]);
          obs.results[at] = doc;
        }
      }
      FAIRJOB_RETURN_IF_ERROR(data.AddObservation(q, l, std::move(obs)));
    }
  }
  return data;
}

std::vector<QuantificationRequest> GenerateServeRequests(
    const ServeLoadSpec& spec, size_t num_groups, size_t num_queries,
    size_t num_locations) {
  std::vector<QuantificationRequest> requests;
  if (num_groups == 0 || num_queries == 0 || num_locations == 0 ||
      spec.distinct_patterns == 0) {
    return requests;
  }
  Rng rng(spec.seed);

  size_t axis_sizes[3] = {num_groups, num_queries, num_locations};
  auto random_selector = [&](size_t axis_size) {
    // Half the patterns aggregate everything; the rest restrict the axis to
    // a random contiguous window (a "these cities only" style filter).
    if (rng.NextBernoulli(0.5) || axis_size < 2) return AxisSelector::All();
    size_t width =
        1 + rng.NextBelow(static_cast<uint32_t>(std::min<size_t>(
                axis_size, 16)));
    size_t start =
        rng.NextBelow(static_cast<uint32_t>(axis_size - width + 1));
    AxisSelector sel;
    sel.positions.reserve(width);
    for (size_t i = 0; i < width; ++i) sel.positions.push_back(start + i);
    return sel;
  };

  std::vector<QuantificationRequest> patterns;
  patterns.reserve(spec.distinct_patterns);
  static const size_t kChoices[4] = {1, 5, 10, 20};
  for (size_t i = 0; i < spec.distinct_patterns; ++i) {
    QuantificationRequest r;
    r.target = static_cast<Dimension>(rng.NextBelow(3));
    size_t target_size = axis_sizes[static_cast<size_t>(r.target)];
    r.k = std::min(kChoices[rng.NextBelow(4)], target_size);
    r.direction = rng.NextBernoulli(0.8) ? RankDirection::kMostUnfair
                                         : RankDirection::kLeastUnfair;
    size_t agg1_axis = r.target == Dimension::kGroup ? 1 : 0;
    size_t agg2_axis = r.target == Dimension::kLocation ? 1 : 2;
    r.agg1 = random_selector(axis_sizes[agg1_axis]);
    r.agg2 = random_selector(axis_sizes[agg2_axis]);
    patterns.push_back(std::move(r));
  }

  ZipfSampler popularity(patterns.size(), spec.zipf_exponent);
  requests.reserve(spec.num_requests);
  for (size_t i = 0; i < spec.num_requests; ++i) {
    requests.push_back(patterns[popularity.Sample(rng)]);
  }
  return requests;
}

std::vector<int64_t> GenerateArrivalTimesMicros(const ArrivalSpec& spec) {
  std::vector<int64_t> arrivals;
  if (spec.target_qps <= 0.0 || spec.duration_seconds <= 0.0) return arrivals;
  Rng rng(spec.seed);
  const double horizon_us = spec.duration_seconds * 1e6;
  const double mean_gap_us = 1e6 / spec.target_qps;
  arrivals.reserve(static_cast<size_t>(spec.target_qps *
                                       spec.duration_seconds * 1.1) + 16);
  double t = 0.0;
  for (;;) {
    // Inverse-transform exponential gap. 1 − u keeps the argument strictly
    // positive when NextDouble() returns exactly 0.
    double u = rng.NextDouble();
    t += -std::log(1.0 - u) * mean_gap_us;
    if (t >= horizon_us) break;
    arrivals.push_back(static_cast<int64_t>(t));
  }
  return arrivals;
}

}  // namespace fairjob
