#ifndef FAIRJOB_MARKET_CALIBRATION_H_
#define FAIRJOB_MARKET_CALIBRATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fairjob {

// Bias-injection parameters of the TaskRabbit-like simulator. The defaults
// are calibrated so the *orderings* of the paper's TaskRabbit tables hold
// (who is most/least unfair, which comparisons reverse where); see DESIGN.md
// §6 and EXPERIMENTS.md for the paper-vs-measured record.
//
// A worker's latent ranking score is
//   base_quality − severity(job, city) · penalty(gender, ethnicity) ± noise
// where the per-cell penalty decomposes into a gender and an ethnicity part,
// and severity is a city factor times a job-category factor plus targeted
// interaction terms.
struct MarketCalibration {
  // Penalty components by value *name* (resolved against the schema).
  std::unordered_map<std::string, double> gender_penalty;
  std::unordered_map<std::string, double> ethnicity_penalty;

  // Per-city discrimination severity in [0, 1].
  std::unordered_map<std::string, double> city_severity;
  // Per-job-category severity in [0, 1].
  std::unordered_map<std::string, double> category_severity;

  // Cities where the gender penalties are swapped (drives the reversal rows
  // of Table 12: places where females are treated *more* fairly than males).
  std::unordered_set<std::string> gender_flip_cities;

  // Direct score displacement for specific (ethnicity, sub-job) pairs,
  // keyed "<ethnicity>|<sub-job>" and scaled by the city severity (drives
  // Tables 13/14). Unlike the penalty (which multiplies the near-zero White
  // cell component), a positive entry displaces that ethnicity bodily —
  // e.g. pushing Whites into the middle of the Lawn Mowing ranking, which
  // *reduces* the White group's distance to its comparables there.
  std::unordered_map<std::string, double> ethnicity_job_adjust;
  // Additive severity adjustment for specific (city, sub-job) pairs, keyed
  // "<city>|<sub-job>" (drives Table 15).
  std::unordered_map<std::string, double> city_job_adjust;

  // The gender component of the cell penalty uses max(city severity, this
  // floor): gendered treatment differences stay measurable even in cities
  // whose overall (ethnicity-driven) severity is near zero, which is what
  // makes the gender-flip reversals of Table 12 visible in Chicago and the
  // Bay Area.
  double gender_city_severity_floor = 0.45;

  // Gaussian noise on the latent score.
  double noise_stddev = 0.06;
  // Spread of worker base quality around 0.5.
  double base_quality_stddev = 0.15;

  // Defaults derived from the paper's reported tables.
  static MarketCalibration PaperDefaults();

  // Severity fallbacks for cities/categories absent from the maps.
  double default_city_severity = 0.5;
  double default_category_severity = 0.55;
};

}  // namespace fairjob

#endif  // FAIRJOB_MARKET_CALIBRATION_H_
