#ifndef FAIRJOB_MARKET_TASKRABBIT_SIM_H_
#define FAIRJOB_MARKET_TASKRABBIT_SIM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "market/marketplace.h"

namespace fairjob {

// Calibrated synthetic stand-in for the paper's June–August 2019 TaskRabbit
// crawl: 56 cities, 8 job categories fanned out into 96 sub-job queries
// (5,361 offered (city, sub-job) combinations), and 3,311 taskers with the
// paper's demographic mix (~72% male, ~66% white). See DESIGN.md §2/§6.

struct TaskRabbitConfig {
  uint64_t seed = 20190601;
  size_t num_workers = 3311;
  // Demographic mix (Figures 7 and 8).
  double male_share = 0.72;
  double white_share = 0.66;
  double black_share = 0.25;  // asian = remainder
  // Share of job categories a tasker offers (keeps result lists below the
  // 50-result crawl cap so bottom ranks stay observable).
  double category_participation = 0.7;
  // Stratify per-city demographics and per-cell base-quality sequences
  // (docs/CALIBRATION.md lesson 2). false reverts to i.i.d. draws — the
  // ablation shows per-city unfairness then reflects composition lotteries
  // rather than the injected severities.
  bool stratified_population = true;
  // Offered (city, sub-job) pairs; the excess over target is excluded
  // deterministically (never touching pairs the paper's tables rely on).
  size_t target_query_count = 5361;
  // Scale-down knobs for tests (0 = no limit).
  size_t max_cities = 0;
  size_t max_subjobs_per_category = 0;
  MarketCalibration calibration = MarketCalibration::PaperDefaults();
  double transient_failure_rate = 0.0;
};

// The canonical protected-attribute schema: ethnicity {Asian, Black, White}
// then gender {Male, Female} (display names read "Asian Female" as in the
// paper's tables).
AttributeSchema TaskRabbitSchema();

// The 56 city names (paper-named cities first, severity-calibrated).
std::vector<std::string> TaskRabbitCities();

// The 8 categories × 12 sub-jobs.
std::vector<JobOffering> TaskRabbitOfferings();

// Builds the simulated site. Errors propagate from marketplace construction.
Result<std::unique_ptr<SimulatedMarketplace>> BuildTaskRabbitSite(
    const TaskRabbitConfig& config = {});

struct TaskRabbitDataset {
  MarketplaceDataset dataset;
  // Sub-job query names per category, for category-level aggregation
  // (Table 9) and sub-job selections (Tables 13–15).
  std::map<std::string, std::vector<std::string>> subjobs_by_category;
  size_t queries_offered = 0;
};

// Generates the marketplace dataset directly from the simulator (identical
// rankings to what a crawl of the site observes, without crawl overhead).
// With `label_error_rate > 0`, worker demographics pass through the
// simulated AMT labeling stage instead of using ground truth.
Result<TaskRabbitDataset> BuildTaskRabbitDataset(
    const TaskRabbitConfig& config = {}, double label_error_rate = 0.0);

}  // namespace fairjob

#endif  // FAIRJOB_MARKET_TASKRABBIT_SIM_H_
