#ifndef FAIRJOB_SEARCH_STUDY_RUNNER_H_
#define FAIRJOB_SEARCH_STUDY_RUNNER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "crawl/dataset_assembly.h"
#include "search/search_engine.h"

namespace fairjob {

// One unit of the user study: a base query asked at one location through a
// set of search-term formulations.
struct StudyTask {
  std::string base_query;
  std::string category;
  std::string location;
  std::vector<std::string> terms;
};

// A recruited participant (Prolific-style), with screened demographics.
struct Participant {
  std::string name;
  Demographics demographics;
};

// The Chrome-extension protocol of Section 5.1.2, reproduced as code:
//  * every term runs `repetitions` times, each `spacing_s` apart (the
//    extension's 12 minutes), defeating the carry-over effect;
//  * the proxy location is pinned to the query's location, defeating
//    geolocation noise;
//  * if the repeated runs disagree (A/B bucket), one extra run decides by
//    majority; persistent disagreement keeps the first list and counts an
//    unresolved conflict.
struct StudyRunnerConfig {
  size_t repetitions = 2;
  int64_t spacing_s = 720;  // 12 minutes
  bool fix_proxy_to_target = true;
};

struct StudyOutcome {
  std::vector<SearchRunRecord> runs;  // one per (user, term, location)
  std::unordered_map<std::string, Demographics> user_demographics;
  std::unordered_map<std::string, std::string> base_query_of_term;
  std::unordered_map<std::string, std::string> category_of_term;
  size_t ab_conflicts_resolved = 0;
  size_t ab_conflicts_unresolved = 0;
};

class StudyRunner {
 public:
  // `engine` and `clock` are borrowed and must outlive the runner.
  StudyRunner(SimulatedSearchEngine* engine, VirtualClock* clock,
              StudyRunnerConfig config);

  // Every participant executes every task. Errors: InvalidArgument on empty
  // tasks/participants or a task without terms.
  Result<StudyOutcome> Run(const std::vector<StudyTask>& tasks,
                           const std::vector<Participant>& participants);

 private:
  SimulatedSearchEngine* engine_;
  VirtualClock* clock_;
  StudyRunnerConfig config_;
};

}  // namespace fairjob

#endif  // FAIRJOB_SEARCH_STUDY_RUNNER_H_
