#include "search/formulations.h"

#include <unordered_map>

namespace fairjob {
namespace {

// Paper-named formulation sets (Tables 6 and 20).
const std::unordered_map<std::string, std::vector<std::string>>&
KnownFormulations() {
  static const auto* kMap =
      new std::unordered_map<std::string, std::vector<std::string>>{
          {"general cleaning",
           {"general cleaning jobs", "office cleaning jobs",
            "private cleaning jobs", "house cleaning jobs",
            "home cleaner needed"}},
          {"run errand",
           {"run errand jobs", "errand service jobs", "errand runner jobs",
            "errands and odd jobs", "jobs running errands for seniors"}},
          {"yard work",
           {"yard work jobs", "yard worker", "lawn work needed",
            "yard help needed", "yard work help wanted"}},
      };
  return *kMap;
}

}  // namespace

std::vector<std::string> ExpandFormulations(const std::string& base_query,
                                            size_t n) {
  std::vector<std::string> terms;
  auto it = KnownFormulations().find(base_query);
  if (it != KnownFormulations().end()) terms = it->second;

  static const char* const kTemplates[] = {
      "%q jobs", "%q worker", "%q needed", "%q help wanted", "jobs doing %q",
      "%q positions", "part time %q", "local %q jobs",
  };
  for (const char* tmpl : kTemplates) {
    if (terms.size() >= n) break;
    std::string term(tmpl);
    size_t at = term.find("%q");
    term.replace(at, 2, base_query);
    terms.push_back(std::move(term));
  }
  if (terms.size() > n) terms.resize(n);
  return terms;
}

}  // namespace fairjob
