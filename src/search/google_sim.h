#ifndef FAIRJOB_SEARCH_GOOGLE_SIM_H_
#define FAIRJOB_SEARCH_GOOGLE_SIM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crawl/dataset_assembly.h"
#include "search/study_runner.h"

namespace fairjob {

// Calibrated synthetic stand-in for the paper's Google job search user study
// (Section 5.1.2): 6 demographic cells × 3 Prolific-style participants, job
// queries derived from TaskRabbit placed at their Table-7 locations, 5
// search-term formulations per query, run through the Chrome-extension
// protocol against the personalized search simulator.

struct GoogleStudyConfig {
  uint64_t seed = 20190715;
  size_t users_per_cell = 3;
  size_t formulations_per_query = 5;
  SearchCalibration calibration = SearchCalibration::PaperDefaults();
  SimulatedSearchEngine::Config engine;
  StudyRunnerConfig protocol;
};

// Same protected-attribute schema as the TaskRabbit side (hypotheses
// transfer across sites).
AttributeSchema GoogleSchema();

// The study's (job, locations) assignment reproducing Table 7 — yard work at
// 4 locations, general cleaning at 3, event staffing / moving job /
// run errand at 1 each — plus "furniture assembly" (1 location), which
// §5.2.2's quantification results reference although Table 7 omits it.
std::vector<StudyTask> GoogleStudyTasks(size_t formulations_per_query = 5);

struct GoogleWorld {
  SearchDataset dataset;  // query axis = search-term formulations
  // Same runs keyed by the canonical base query ("general cleaning") instead
  // of the formulation term — used when tables compare whole queries
  // (Tables 18/19, §5.2.2 query quantification).
  SearchDataset dataset_by_base_query;
  Vocabulary documents;
  std::unordered_map<std::string, std::string> base_query_of_term;
  std::unordered_map<std::string, std::string> category_of_term;
  std::vector<StudyTask> tasks;
  size_t ab_conflicts_resolved = 0;
  size_t ab_conflicts_unresolved = 0;
};

// Builds engine + participants, runs the study, assembles the dataset.
Result<GoogleWorld> BuildGoogleStudy(const GoogleStudyConfig& config = {});

}  // namespace fairjob

#endif  // FAIRJOB_SEARCH_GOOGLE_SIM_H_
