#include "search/google_sim.h"

#include "search/formulations.h"

namespace fairjob {
namespace {

struct JobPlacement {
  const char* base_query;
  std::vector<const char*> locations;
};

// Table 7's locations-per-job assignment over the study's 10 Prolific
// locations + Washington, DC (referenced by §5.2.2's quantification), plus
// the "bottom-10 frequently searched" filler jobs that give every city its
// second query — the paper's study ran 20 queries over 10 locations, i.e.
// about two jobs per city, of which Table 7 itemizes only the top five.
const std::vector<JobPlacement>& Placements() {
  static const auto* kPlacements = new std::vector<JobPlacement>{
      {"yard work",
       {"New York City, NY", "Los Angeles, CA", "Detroit, MI",
        "Washington, DC"}},
      {"general cleaning", {"Boston, MA", "Bristol, UK", "Manchester, UK"}},
      {"event staffing", {"Charlotte, NC"}},
      {"moving job", {"Pittsburgh, PA"}},
      {"run errand", {"London, UK"}},
      {"furniture assembly", {"Birmingham, UK"}},
      // Filler (bottom-10) queries: every city's second job.
      {"house painting", {"London, UK", "Washington, DC"}},
      {"dog walking", {"New York City, NY", "Los Angeles, CA"}},
      {"tutoring", {"Detroit, MI"}},
      {"pet sitting", {"Boston, MA", "Bristol, UK", "Manchester, UK"}},
      {"window installation",
       {"Birmingham, UK", "Charlotte, NC", "Pittsburgh, PA"}},
  };
  return *kPlacements;
}

}  // namespace

AttributeSchema GoogleSchema() {
  AttributeSchema schema;
  Result<AttributeId> eth =
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"});
  Result<AttributeId> gender =
      schema.AddAttribute("gender", {"Male", "Female"});
  (void)eth;
  (void)gender;
  return schema;
}

std::vector<StudyTask> GoogleStudyTasks(size_t formulations_per_query) {
  std::vector<StudyTask> tasks;
  for (const JobPlacement& placement : Placements()) {
    std::vector<std::string> terms =
        ExpandFormulations(placement.base_query, formulations_per_query);
    for (const char* location : placement.locations) {
      StudyTask task;
      task.base_query = placement.base_query;
      task.category = placement.base_query;  // jobs double as categories here
      task.location = location;
      task.terms = terms;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

Result<GoogleWorld> BuildGoogleStudy(const GoogleStudyConfig& config) {
  AttributeSchema schema = GoogleSchema();
  FAIRJOB_ASSIGN_OR_RETURN(AttributeId eth_attr,
                           schema.FindAttribute("ethnicity"));
  FAIRJOB_ASSIGN_OR_RETURN(AttributeId gender_attr,
                           schema.FindAttribute("gender"));

  FAIRJOB_ASSIGN_OR_RETURN(
      PersonalizationModel model,
      PersonalizationModel::Make(schema, config.calibration));
  SimulatedSearchEngine::Config engine_config = config.engine;
  engine_config.seed ^= config.seed;
  SimulatedSearchEngine engine(std::move(model), engine_config);

  // 6 demographic cells × users_per_cell screened participants.
  std::vector<Participant> participants;
  for (size_t e = 0; e < schema.num_values(eth_attr); ++e) {
    for (size_t g = 0; g < schema.num_values(gender_attr); ++g) {
      for (size_t i = 0; i < config.users_per_cell; ++i) {
        Participant p;
        p.name = "user_" +
                 schema.value_name(eth_attr, static_cast<ValueId>(e)) + "_" +
                 schema.value_name(gender_attr, static_cast<ValueId>(g)) +
                 "_" + std::to_string(i);
        Demographics d(schema.num_attributes(), 0);
        d[static_cast<size_t>(eth_attr)] = static_cast<ValueId>(e);
        d[static_cast<size_t>(gender_attr)] = static_cast<ValueId>(g);
        p.demographics = std::move(d);
        participants.push_back(std::move(p));
      }
    }
  }

  std::vector<StudyTask> tasks =
      GoogleStudyTasks(config.formulations_per_query);

  VirtualClock clock;
  StudyRunner runner(&engine, &clock, config.protocol);
  FAIRJOB_ASSIGN_OR_RETURN(StudyOutcome outcome,
                           runner.Run(tasks, participants));

  FAIRJOB_ASSIGN_OR_RETURN(
      SearchAssembly assembly,
      AssembleSearch(schema, outcome.runs, outcome.user_demographics));

  std::vector<SearchRunRecord> base_runs = outcome.runs;
  for (SearchRunRecord& run : base_runs) {
    run.query = outcome.base_query_of_term.at(run.query);
  }
  FAIRJOB_ASSIGN_OR_RETURN(
      SearchAssembly base_assembly,
      AssembleSearch(schema, base_runs, outcome.user_demographics));

  GoogleWorld world{std::move(assembly.dataset),
                    std::move(base_assembly.dataset),
                    std::move(assembly.documents),
                    std::move(outcome.base_query_of_term),
                    std::move(outcome.category_of_term), std::move(tasks),
                    outcome.ab_conflicts_resolved,
                    outcome.ab_conflicts_unresolved};
  return world;
}

}  // namespace fairjob
