#include "search/personalization.h"

#include <algorithm>

namespace fairjob {
namespace {

double LookupOr(const std::unordered_map<std::string, double>& map,
                const std::string& key, double fallback) {
  auto it = map.find(key);
  return it == map.end() ? fallback : it->second;
}

}  // namespace

SearchCalibration SearchCalibration::PaperDefaults() {
  SearchCalibration c;

  // §5.2.2: White Females most discriminated against, Black Males least.
  c.gender_intensity = {{"Male", 0.06}, {"Female", 0.32}};
  c.ethnicity_intensity = {{"White", 0.25}, {"Asian", 0.15}, {"Black", 0.05}};

  // §5.2.2: Washington DC fairest, London UK unfairest. Each study city
  // hosts two job queries (the paper ran 20 queries over 10 locations), and
  // these severities are calibrated jointly with the category intensities so
  // that London tops the per-location averages while yard work tops the
  // per-query averages.
  c.location_severity = {
      {"London, UK", 1.00},        {"Birmingham, UK", 0.90},
      {"Bristol, UK", 0.85},       {"Manchester, UK", 0.80},
      {"New York City, NY", 0.50}, {"Detroit, MI", 0.56},
      {"Charlotte, NC", 0.45},     {"Pittsburgh, PA", 0.40},
      {"Boston, MA", 0.35},        {"Los Angeles, CA", 0.42},
      {"Washington, DC", 0.05},
  };

  // §5.2.2: Yard Work most unfair, Furniture Assembly most fair. The
  // lower-case names past the first six are the "bottom-10 frequently
  // searched" filler queries that give every city its second job.
  c.category_intensity = {
      {"yard work", 1.00},        {"general cleaning", 0.26},
      {"moving job", 0.30},       {"run errand", 0.25},
      {"event staffing", 0.18},   {"furniture assembly", 0.00},
      {"house painting", 0.51},   {"pet sitting", 0.20},
      {"window installation", 0.20}, {"dog walking", 0.38},
      {"tutoring", 0.28},
  };

  // Table 16: locations where females are treated more fairly than males.
  c.gender_flip_locations = {
      "Birmingham, UK", "Bristol, UK", "Detroit, MI", "New York City, NY",
  };

  // Tables 18/19: for Blacks (and, under Kendall-Tau, Asians) General
  // Cleaning compares as less fair than Running Errands, inverting the
  // overall comparison.
  // Our simulated overall runs slightly the other way around (the paper's
  // margin is 0.001), so the reversing ethnicities get extra personalization
  // on run-errand queries rather than on cleaning ones.
  c.ethnicity_query_adjust = {
      {"White|run errand", +0.10},
      {"Black|general cleaning", +0.02},
  };

  // Tables 20/21: Boston is fairer than Bristol overall, but less fair on
  // the office/private cleaning formulations.
  c.location_term_adjust = {
      {"Boston, MA|office cleaning jobs", +0.18},
      {"Boston, MA|private cleaning jobs", +0.18},
      {"Bristol, UK|office cleaning jobs", -0.06},
      {"Bristol, UK|private cleaning jobs", -0.06},
  };

  return c;
}

Result<PersonalizationModel> PersonalizationModel::Make(
    const AttributeSchema& schema, SearchCalibration calibration) {
  PersonalizationModel model(std::move(calibration));
  FAIRJOB_ASSIGN_OR_RETURN(model.gender_attr_, schema.FindAttribute("gender"));
  FAIRJOB_ASSIGN_OR_RETURN(model.ethnicity_attr_,
                           schema.FindAttribute("ethnicity"));

  size_t n_gender = schema.num_values(model.gender_attr_);
  model.gender_by_id_.assign(n_gender, 0.0);
  for (size_t v = 0; v < n_gender; ++v) {
    const std::string& name =
        schema.value_name(model.gender_attr_, static_cast<ValueId>(v));
    auto it = model.calibration_.gender_intensity.find(name);
    if (it == model.calibration_.gender_intensity.end()) {
      return Status::NotFound("calibration has no gender intensity for '" +
                              name + "'");
    }
    model.gender_by_id_[v] = it->second;
  }

  size_t n_eth = schema.num_values(model.ethnicity_attr_);
  model.ethnicity_by_id_.assign(n_eth, 0.0);
  model.ethnicity_names_.resize(n_eth);
  for (size_t v = 0; v < n_eth; ++v) {
    const std::string& name =
        schema.value_name(model.ethnicity_attr_, static_cast<ValueId>(v));
    auto it = model.calibration_.ethnicity_intensity.find(name);
    if (it == model.calibration_.ethnicity_intensity.end()) {
      return Status::NotFound("calibration has no ethnicity intensity for '" +
                              name + "'");
    }
    model.ethnicity_by_id_[v] = it->second;
    model.ethnicity_names_[v] = name;
  }
  return model;
}

double PersonalizationModel::Intensity(const Demographics& user,
                                       const std::string& base_query,
                                       const std::string& category,
                                       const std::string& term,
                                       const std::string& location) const {
  size_t g = static_cast<size_t>(user[static_cast<size_t>(gender_attr_)]);
  size_t e = static_cast<size_t>(user[static_cast<size_t>(ethnicity_attr_)]);

  double gender = gender_by_id_[g];
  if (calibration_.gender_flip_locations.count(location) > 0) {
    double total = 0.0;
    for (double x : gender_by_id_) total += x;
    gender = (total - gender) / static_cast<double>(gender_by_id_.size() - 1);
  }
  double cell = gender + ethnicity_by_id_[e];

  double cat = LookupOr(calibration_.category_intensity, category,
                        calibration_.default_category_intensity);
  double loc = LookupOr(calibration_.location_severity, location,
                        calibration_.default_location_severity);

  double theta = loc * (0.3 * cell + 0.7 * cat);
  theta += LookupOr(calibration_.ethnicity_query_adjust,
                    ethnicity_names_[e] + "|" + base_query, 0.0);
  theta += LookupOr(calibration_.location_term_adjust, location + "|" + term,
                    0.0);
  return std::clamp(theta, 0.0, 1.0);
}

}  // namespace fairjob
