#ifndef FAIRJOB_SEARCH_PERSONALIZATION_H_
#define FAIRJOB_SEARCH_PERSONALIZATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/attribute_schema.h"

namespace fairjob {

// Bias-injection parameters of the Google-like search simulator: how much a
// user's personalized results diverge from the canonical list, as a function
// of demographics, query category, location and targeted interactions.
// Calibrated to the paper's §5.2.2 quantification and Tables 16–21; see
// DESIGN.md §6.
struct SearchCalibration {
  std::unordered_map<std::string, double> gender_intensity;
  std::unordered_map<std::string, double> ethnicity_intensity;
  std::unordered_map<std::string, double> location_severity;   // in [0, 1]
  std::unordered_map<std::string, double> category_intensity;  // in [0, 1]
  // Locations where the gender components are swapped (Tables 16/17).
  std::unordered_set<std::string> gender_flip_locations;
  // Additive tweaks keyed "<ethnicity>|<base query>" (Tables 18/19).
  std::unordered_map<std::string, double> ethnicity_query_adjust;
  // Additive tweaks keyed "<location>|<term>" (Tables 20/21).
  std::unordered_map<std::string, double> location_term_adjust;

  double default_location_severity = 0.5;
  double default_category_intensity = 0.5;

  static SearchCalibration PaperDefaults();
};

// Resolves a SearchCalibration against a schema and computes per-search
// personalization intensities θ ∈ [0, 1]:
//   θ = loc_severity · (w_demo · cell + w_cat · category) + interactions.
class PersonalizationModel {
 public:
  // Errors: NotFound when the schema lacks gender/ethnicity or the
  // calibration misses one of their values.
  static Result<PersonalizationModel> Make(const AttributeSchema& schema,
                                           SearchCalibration calibration);

  const SearchCalibration& calibration() const { return calibration_; }

  double Intensity(const Demographics& user, const std::string& base_query,
                   const std::string& category, const std::string& term,
                   const std::string& location) const;

 private:
  explicit PersonalizationModel(SearchCalibration calibration)
      : calibration_(std::move(calibration)) {}

  SearchCalibration calibration_;
  AttributeId gender_attr_ = 0;
  AttributeId ethnicity_attr_ = 0;
  std::vector<double> gender_by_id_;
  std::vector<double> ethnicity_by_id_;
  std::vector<std::string> ethnicity_names_;
};

}  // namespace fairjob

#endif  // FAIRJOB_SEARCH_PERSONALIZATION_H_
