#ifndef FAIRJOB_SEARCH_FORMULATIONS_H_
#define FAIRJOB_SEARCH_FORMULATIONS_H_

#include <string>
#include <vector>

namespace fairjob {

// Stand-in for the paper's Google-Keyword-Planner step (Table 6): expands a
// base query into `n` deterministic search-term formulations. Queries the
// paper names formulations for (e.g. "general cleaning" -> "office cleaning
// jobs", "private cleaning jobs", ...) use those; other queries fall back to
// generic templates ("<q> jobs", "<q> worker", ...).
std::vector<std::string> ExpandFormulations(const std::string& base_query,
                                            size_t n = 5);

}  // namespace fairjob

#endif  // FAIRJOB_SEARCH_FORMULATIONS_H_
