#include "search/study_runner.h"

namespace fairjob {

StudyRunner::StudyRunner(SimulatedSearchEngine* engine, VirtualClock* clock,
                         StudyRunnerConfig config)
    : engine_(engine), clock_(clock), config_(config) {}

Result<StudyOutcome> StudyRunner::Run(
    const std::vector<StudyTask>& tasks,
    const std::vector<Participant>& participants) {
  if (tasks.empty()) return Status::InvalidArgument("study has no tasks");
  if (participants.empty()) {
    return Status::InvalidArgument("study has no participants");
  }
  if (config_.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  for (const StudyTask& task : tasks) {
    if (task.terms.empty()) {
      return Status::InvalidArgument("task '" + task.base_query +
                                     "' has no search terms");
    }
  }

  StudyOutcome outcome;
  for (const StudyTask& task : tasks) {
    for (const std::string& term : task.terms) {
      outcome.base_query_of_term[term] = task.base_query;
      outcome.category_of_term[term] = task.category;
    }
  }

  for (const Participant& participant : participants) {
    outcome.user_demographics[participant.name] = participant.demographics;
    for (const StudyTask& task : tasks) {
      for (const std::string& term : task.terms) {
        SimulatedSearchEngine::Request request;
        request.user = participant.name;
        request.demographics = participant.demographics;
        request.base_query = task.base_query;
        request.category = task.category;
        request.term = term;
        request.location = task.location;
        request.proxy_location =
            config_.fix_proxy_to_target ? task.location : "";

        std::vector<std::vector<std::string>> attempts;
        for (size_t rep = 0; rep < config_.repetitions; ++rep) {
          clock_->AdvanceSeconds(config_.spacing_s);
          attempts.push_back(engine_->Search(request, clock_->NowSeconds()));
        }
        // Keep a list observed twice; a disagreement (A/B noise) triggers
        // one tie-breaking run.
        std::vector<std::string> final_list = attempts[0];
        bool agreed = false;
        for (size_t i = 0; i < attempts.size() && !agreed; ++i) {
          for (size_t j = i + 1; j < attempts.size(); ++j) {
            if (attempts[i] == attempts[j]) {
              final_list = attempts[i];
              agreed = true;
              break;
            }
          }
        }
        if (!agreed) {
          clock_->AdvanceSeconds(config_.spacing_s);
          std::vector<std::string> extra =
              engine_->Search(request, clock_->NowSeconds());
          bool matched = false;
          for (const auto& attempt : attempts) {
            if (attempt == extra) {
              final_list = extra;
              matched = true;
              break;
            }
          }
          if (matched) {
            ++outcome.ab_conflicts_resolved;
          } else {
            ++outcome.ab_conflicts_unresolved;
          }
        }

        outcome.runs.push_back(SearchRunRecord{participant.name, term,
                                               task.location,
                                               std::move(final_list)});
      }
    }
  }
  return outcome;
}

}  // namespace fairjob
