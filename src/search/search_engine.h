#ifndef FAIRJOB_SEARCH_SEARCH_ENGINE_H_
#define FAIRJOB_SEARCH_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "search/personalization.h"

namespace fairjob {

// A personalized job-search engine over a synthetic posting corpus. Each
// (base query, location) pair has a canonical ranked list; a user's results
// are a profile-stable perturbation of it whose magnitude is the
// PersonalizationModel intensity θ. The engine also reproduces the noise
// sources the paper controls for (Hannak et al.): carry-over effect, A/B
// testing, and geolocation mismatch — so the StudyRunner's protocol
// (12-minute spacing, repeated runs, fixed proxy) has something to defeat.
class SimulatedSearchEngine {
 public:
  struct Config {
    uint64_t seed = 7;
    size_t result_size = 20;      // top-k lists users see
    size_t corpus_per_query = 60; // postings per (base query, location)

    // Personalization shape.
    double swap_factor = 1.2;        // adjacent swaps ≈ θ · k · factor
    double substitution_rate = 0.35; // per-item substitution prob = θ · rate

    // Noise sources (all drawn from a non-reproducible stream).
    int64_t carry_over_window_s = 600;
    double carry_over_rate = 0.35;
    double ab_test_rate = 0.08;
    size_t ab_swaps = 3;
    double geo_mismatch_rate = 0.5;
  };

  struct Request {
    std::string user;
    Demographics demographics;
    std::string base_query;
    std::string category;
    std::string term;            // search-term formulation
    std::string location;        // target location of the query
    std::string proxy_location;  // where the request appears to originate
  };

  SimulatedSearchEngine(PersonalizationModel model, Config config);

  // The un-personalized result list for a formulation.
  std::vector<std::string> CanonicalResults(const std::string& base_query,
                                            const std::string& term,
                                            const std::string& location) const;

  // Executes a search at virtual time `now_s`; returns document keys
  // best-first. Same user + same (base query, location) always get the same
  // personalized base list; noise sources add on top unless avoided by
  // protocol.
  std::vector<std::string> Search(const Request& request, int64_t now_s);

  const Config& config() const { return config_; }
  const PersonalizationModel& model() const { return model_; }

 private:
  std::string DocKey(const std::string& base_query,
                     const std::string& location, size_t index) const;

  PersonalizationModel model_;
  Config config_;
  Rng noise_rng_;

  struct UserHistory {
    int64_t last_search_s = -1;
    std::vector<std::string> last_results;
  };
  std::unordered_map<std::string, UserHistory> history_;
};

}  // namespace fairjob

#endif  // FAIRJOB_SEARCH_SEARCH_ENGINE_H_
