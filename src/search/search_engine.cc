#include "search/search_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fairjob {
namespace {

uint64_t HashStrings(uint64_t seed, std::initializer_list<const std::string*>
                                        parts) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const std::string* s : parts) {
    for (char c : *s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void AdjacentSwaps(std::vector<std::string>* list, size_t count, Rng* rng) {
  if (list->size() < 2) return;
  for (size_t i = 0; i < count; ++i) {
    size_t at = rng->NextBelow(static_cast<uint32_t>(list->size() - 1));
    std::swap((*list)[at], (*list)[at + 1]);
  }
}

}  // namespace

SimulatedSearchEngine::SimulatedSearchEngine(PersonalizationModel model,
                                             Config config)
    : model_(std::move(model)),
      config_(config),
      noise_rng_(config.seed ^ 0x4e015eULL) {}

std::string SimulatedSearchEngine::DocKey(const std::string& base_query,
                                          const std::string& location,
                                          size_t index) const {
  return "job(" + base_query + " @ " + location + ")#" + std::to_string(index);
}

std::vector<std::string> SimulatedSearchEngine::CanonicalResults(
    const std::string& base_query, const std::string& term,
    const std::string& location) const {
  // A seeded shuffle of the corpus fixes the canonical order per
  // (base query, location); the formulation adds a small deterministic
  // variation (the paper chose terms whose results are similar, not equal).
  std::vector<size_t> order(config_.corpus_per_query);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(HashStrings(config_.seed, {&base_query, &location}));
  rng.Shuffle(order);

  size_t k = std::min(config_.result_size, order.size());
  std::vector<std::string> results;
  results.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    results.push_back(DocKey(base_query, location, order[i]));
  }
  Rng term_rng(HashStrings(config_.seed ^ 0x7e47ULL, {&term}));
  AdjacentSwaps(&results, 2, &term_rng);
  return results;
}

std::vector<std::string> SimulatedSearchEngine::Search(const Request& request,
                                                       int64_t now_s) {
  std::vector<std::string> results =
      CanonicalResults(request.base_query, request.term, request.location);
  size_t k = results.size();
  if (k == 0) return results;

  double theta = model_.Intensity(request.demographics, request.base_query,
                                  request.category, request.term,
                                  request.location);

  // Profile-driven personalization: stable per (user, base query, location).
  Rng user_rng(HashStrings(config_.seed ^ 0xbea7ULL,
                           {&request.user, &request.base_query,
                            &request.location}));
  std::unordered_set<std::string> present(results.begin(), results.end());
  // Substitutions pull in postings beyond the canonical top-k.
  size_t extra = config_.corpus_per_query > k ? config_.corpus_per_query - k : 0;
  for (size_t i = 0; i < k && extra > 0; ++i) {
    if (user_rng.NextBernoulli(theta * config_.substitution_rate)) {
      for (size_t attempt = 0; attempt < 8; ++attempt) {
        size_t idx = k + user_rng.NextBelow(static_cast<uint32_t>(extra));
        std::string doc = DocKey(request.base_query, request.location, idx);
        if (present.insert(doc).second) {
          present.erase(results[i]);
          results[i] = std::move(doc);
          break;
        }
      }
    }
  }
  size_t swaps = static_cast<size_t>(
      std::lround(theta * static_cast<double>(k) * config_.swap_factor));
  AdjacentSwaps(&results, swaps, &user_rng);

  // --- noise sources (non-reproducible stream) -----------------------------
  UserHistory& history = history_[request.user];

  // Carry-over effect: a recent previous search bleeds into this one.
  if (history.last_search_s >= 0 &&
      now_s - history.last_search_s <= config_.carry_over_window_s) {
    for (size_t i = 0; i < results.size(); ++i) {
      if (!noise_rng_.NextBernoulli(config_.carry_over_rate)) continue;
      if (history.last_results.empty()) break;
      const std::string& candidate = history.last_results[noise_rng_.NextBelow(
          static_cast<uint32_t>(history.last_results.size()))];
      if (present.count(candidate) == 0) {
        present.erase(results[i]);
        present.insert(candidate);
        results[i] = candidate;
      }
    }
  }

  // A/B testing bucket: occasional extra reordering.
  if (noise_rng_.NextBernoulli(config_.ab_test_rate)) {
    AdjacentSwaps(&results, config_.ab_swaps, &noise_rng_);
  }

  // Geolocation mismatch: results leak in from the origin location.
  if (!request.proxy_location.empty() &&
      request.proxy_location != request.location) {
    for (size_t i = 0; i < results.size(); ++i) {
      if (!noise_rng_.NextBernoulli(config_.geo_mismatch_rate)) continue;
      size_t idx = noise_rng_.NextBelow(
          static_cast<uint32_t>(config_.corpus_per_query));
      std::string doc = DocKey(request.base_query, request.proxy_location, idx);
      if (present.insert(doc).second) {
        present.erase(results[i]);
        results[i] = std::move(doc);
      }
    }
  }

  history.last_search_s = now_s;
  history.last_results = results;
  return results;
}

}  // namespace fairjob
